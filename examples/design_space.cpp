// Design-space exploration: where is reliable computation even possible, and
// what does it cost? Sweeps (eps, delta) for a mapped array multiplier,
// prints the Theorem 4 feasibility frontier, iso-energy contours, and the
// Section 5.2 voltage-scaling trade-offs at a chosen operating point.
#include <cmath>
#include <iostream>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "core/analyzer.hpp"
#include "core/delay_model.hpp"
#include "core/depth_bound.hpp"
#include "exec/batch.hpp"
#include "gen/multipliers.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"

int main() {
  using namespace enb;

  // One compiled handle: the profile extracted here feeds every analysis
  // below (grid, sweep, voltage scaling) from the handle's cache.
  const analysis::CompiledCircuit mapped =
      analysis::compile(gen::array_multiplier(4)).mapped(3);
  const core::CircuitProfile& profile = mapped.profile();
  std::cout << "circuit: " << profile.name << " mapped to fanin <= 3, S0 = "
            << profile.size_s0 << ", k = " << profile.avg_fanin_k << "\n\n";

  // Feasibility frontier: the largest eps admitting any depth bound at all.
  std::cout << "Theorem 4 feasibility: gates of average fanin "
            << profile.avg_fanin_k << " tolerate eps < "
            << report::format_double(
                   core::max_feasible_epsilon(profile.avg_fanin_k), 4)
            << "; beyond that only functions of n <= 1/Delta(delta) inputs "
               "are computable.\n\n";

  // Energy-bound landscape over (eps, delta).
  report::Table grid({"eps \\ delta", "0.001", "0.01", "0.05", "0.1"});
  for (double eps : {0.001, 0.005, 0.01, 0.05, 0.1}) {
    std::vector<double> row;
    for (double delta : {0.001, 0.01, 0.05, 0.1}) {
      row.push_back(
          core::analyze(profile, eps, delta).energy.total_factor);
    }
    grid.add_row(report::format_double(eps, 3), row);
  }
  std::cout << "total-energy lower-bound factor over (eps, delta):\n"
            << grid.to_text() << "\n";

  // Energy and delay vs eps as a chart. Grid points are independent
  // energy-bound requests on the shared handle — its cached profile feeds
  // every point, so the sweep performs zero extractions and zero netlist
  // copies.
  const std::vector<double> eps_grid = core::log_grid(1e-3, 0.2, 24);
  exec::BatchEvaluator batch;
  for (std::size_t i = 0; i < eps_grid.size(); ++i) {
    analysis::AnalysisRequest request;
    request.name = "eps_" + std::to_string(i);
    request.circuit = mapped;
    analysis::EnergyBoundRequest spec;
    spec.epsilon = eps_grid[i];
    spec.delta = 0.01;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const std::vector<analysis::AnalysisResult> sweep = batch.run();
  report::Series energy("energy", {}, {});
  report::Series delay("delay", {}, {});
  for (std::size_t i = 0; i < eps_grid.size(); ++i) {
    if (!sweep[i].ok) {
      std::cerr << "energy-bound job " << sweep[i].name
                << " failed: " << sweep[i].error << "\n";
      return 1;
    }
    energy.push(eps_grid[i], sweep[i].metric("total_factor").value());
    delay.push(eps_grid[i], sweep[i].metric("delay_factor").value());
  }
  report::ChartOptions chart;
  chart.title = "bounds vs eps (delta = 0.01)";
  chart.log_x = true;
  chart.x_label = "eps";
  std::cout << report::line_chart({energy, delay}, chart) << "\n";

  // Section 5.2: what voltage scaling does to the raw bound point.
  const auto r = core::analyze(profile, 0.01, 0.01);
  const core::TechnologyParams tech;  // 1.2 V nominal, 0.3 V threshold
  std::cout << "voltage-scaling trade-offs at eps = 1% (raw factors: E = "
            << report::format_double(r.energy.total_factor, 3) << ", D = "
            << report::format_double(r.metrics.delay, 3) << "):\n";
  const auto iso_e =
      core::apply_iso_energy(r.energy.total_factor, r.metrics.delay, tech);
  std::cout << "  iso-energy:  lower Vdd to "
            << report::format_double(iso_e.vdd, 3) << " V -> delay factor "
            << report::format_double(iso_e.delay_factor, 3)
            << " (energy budget held)\n";
  const auto iso_d =
      core::apply_iso_delay(r.energy.total_factor, r.metrics.delay, tech);
  std::cout << "  iso-delay:   raise Vdd to "
            << report::format_double(iso_d.vdd, 3) << " V -> energy factor "
            << report::format_double(iso_d.energy_factor, 3)
            << " (performance held)\n";
  return 0;
}
