// Redundancy explorer: fault-simulates the classic schemes the bounds
// abstract over — bare, TMR, NMR-5, two-level cascaded TMR, von Neumann
// multiplexing — on c17, and places every achieved (gates, delta_hat) point
// against the Theorem 2 minimum-size curve. Demonstrates both the value and
// the looseness of the lower bound, and the classic voter-complexity effect.
#include <iostream>

#include "core/validate_bounds.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/iscas.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "sim/reliability.hpp"

int main() {
  using namespace enb;

  const netlist::Circuit base = gen::c17();
  const core::CircuitProfile profile = core::extract_profile(base);
  const double eps = 0.01;
  sim::ReliabilityOptions mc;
  mc.trials = 1 << 18;

  std::cout << "base: c17 (" << base.gate_count()
            << " NAND2 gates), per-gate error eps = " << eps << "\n\n";

  report::Table table({"scheme", "gates", "delta_hat", "95% CI",
                       "thm2 min gates", "consistent"});
  std::vector<report::BarGroup> bars;

  const auto record = [&](const std::string& scheme, std::size_t gates,
                          const sim::ReliabilityResult& rel) {
    core::EmpiricalPoint point;
    point.scheme = scheme;
    point.total_gates = static_cast<double>(gates);
    point.delta_hat = rel.delta_hat;
    point.delta_ci_high = rel.ci_high;
    const core::BoundCheck check = core::check_point(profile, eps, point);
    table.add_row({scheme, std::to_string(gates),
                   report::format_double(rel.delta_hat, 4),
                   "[" + report::format_double(rel.ci_low, 4) + ", " +
                       report::format_double(rel.ci_high, 4) + "]",
                   report::format_double(check.required_size, 4),
                   check.vacuous ? "(vacuous)"
                                 : (check.consistent ? "yes" : "VIOLATION")});
    bars.push_back({scheme, {rel.delta_hat}});
  };

  record("bare", base.gate_count(),
         sim::estimate_reliability(base, eps, mc));

  const auto tmr = ft::nmr_transform(base);
  record("tmr", tmr.circuit.gate_count(),
         sim::estimate_reliability_vs(tmr.circuit, base, eps, mc));

  ft::NmrOptions nmr5;
  nmr5.copies = 5;
  const auto n5 = ft::nmr_transform(base, nmr5);
  record("nmr5", n5.circuit.gate_count(),
         sim::estimate_reliability_vs(n5.circuit, base, eps, mc));

  const auto tmr2 = ft::cascaded_tmr(base, 2);
  record("tmr^2", tmr2.gate_count(),
         sim::estimate_reliability_vs(tmr2, base, eps, mc));

  ft::MultiplexOptions mux;
  mux.bundle_width = 5;
  mux.restorative_stages = 1;
  const auto mc5 = ft::multiplex_transform(base, mux);
  record("mux5r1", mc5.circuit.gate_count(),
         ft::estimate_multiplexed_reliability(mc5, base, eps, mc));

  std::cout << table.to_text() << "\n";
  report::ChartOptions chart;
  chart.title = "achieved output error per scheme (lower is better)";
  std::cout << report::bar_chart({"delta_hat"}, bars, chart) << "\n";

  std::cout
      << "notes:\n"
      << "  * every point sits above the Theorem 2 minimum -> the bound is\n"
      << "    empirically sound, and visibly loose (real schemes pay far\n"
      << "    more than the information-theoretic floor).\n"
      << "  * schemes whose voters are large relative to the circuit can be\n"
      << "    counterproductive (von Neumann's restitution-organ caveat).\n";
  return 0;
}
