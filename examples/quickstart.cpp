// Quickstart: the full Section 6 flow on one circuit in ~40 lines.
//   1. generate a 16-bit ripple-carry adder,
//   2. map it onto the paper's generic max-fanin-3 library,
//   3. extract the (s, S0, sw0, k) profile,
//   4. evaluate every bound of the paper at (eps, delta) = (1%, 1%).
#include <iostream>

#include "core/analyzer.hpp"
#include "gen/adders.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace enb;

  const netlist::Circuit adder = gen::ripple_carry_adder(16);
  const synth::MapResult mapped = synth::map_to_library(adder, {});
  std::cout << "mapped " << adder.name() << ": " << mapped.before.num_gates
            << " -> " << mapped.after.num_gates << " gates, depth "
            << mapped.after.depth << ", max fanin " << mapped.after.max_fanin
            << (mapped.verified ? " (equivalence verified)" : "") << "\n\n";

  const core::CircuitProfile profile = core::extract_profile(mapped.circuit);
  std::cout << "profile: S0 = " << profile.size_s0
            << ", depth = " << profile.depth_d0
            << ", avg fanin k = " << profile.avg_fanin_k
            << ", sw0 = " << report::format_double(profile.avg_activity_sw0, 3)
            << ", sensitivity s " << (profile.sensitivity_exact ? "=" : ">=")
            << " " << profile.sensitivity_s << "\n\n";

  const double eps = 0.01;    // each gate fails with probability 1%
  const double delta = 0.01;  // the output must be right 99% of the time
  const core::BoundReport r = core::analyze(profile, eps, delta);

  std::cout << "bounds at (eps, delta) = (" << eps << ", " << delta << "):\n";
  std::cout << "  Theorem 1  per-gate activity rises from "
            << report::format_double(profile.avg_activity_sw0, 3) << " to "
            << report::format_double(r.sw_noisy, 3) << "\n";
  std::cout << "  Theorem 2  at least "
            << report::format_double(r.redundancy_gates, 3)
            << " extra gates (size factor "
            << report::format_double(r.size_factor, 4) << ")\n";
  std::cout << "  Theorem 3  leakage/switching ratio scales by "
            << report::format_double(r.leakage_ratio, 4) << "\n";
  std::cout << "  Theorem 4  delay factor at least "
            << report::format_double(r.metrics.delay, 4) << "\n";
  std::cout << "  Corollary 2 + 50% leakage: total energy at least "
            << report::format_double(r.energy.total_factor, 4)
            << "x the error-free design\n";
  std::cout << "  derived    EDP >= "
            << report::format_double(r.metrics.edp, 4) << "x, average power "
            << report::format_double(r.metrics.avg_power, 4) << "x\n";
  return 0;
}
