// Sequential quickstart: the future-work extension in action. Builds an
// 8-bit LFSR, watches state errors accumulate under gate noise, and applies
// the combinational bounds to its unrolled computation.
#include <iostream>

#include "core/analyzer.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "seq/seq_bench_io.hpp"
#include "seq/seq_gen.hpp"
#include "seq/seq_sim.hpp"
#include "seq/unroll.hpp"

int main() {
  using namespace enb;

  const seq::SeqCircuit machine = seq::lfsr_maximal(8);
  std::cout << "machine: " << machine.name() << " ("
            << machine.core().gate_count() << " gates, "
            << machine.num_latches() << " latches)\n\n";

  // 1. Error accumulation under fault injection.
  const double eps = 0.01;
  seq::SeqReliabilityOptions mc;
  mc.cycles = 16;
  mc.word_passes = 256;
  const auto points = seq::estimate_seq_reliability(machine, eps, mc);
  report::Series state_err("state_error", {}, {});
  for (const auto& p : points) state_err.push(p.cycle, p.state_error);
  report::ChartOptions chart;
  chart.title = "state error vs cycle (eps = 1%)";
  chart.x_label = "cycle";
  std::cout << report::line_chart({state_err}, chart) << "\n";

  // 2. Combinational bounds on the unrolled transition function. The LFSR
  // is autonomous (no free inputs), so the initial state must become the
  // unrolled circuit's inputs — otherwise the unrolling is a constant.
  report::Table table({"frames T", "S0", "E bound", "E bound per cycle"});
  for (int frames : {1, 4, 8}) {
    seq::UnrollOptions options;
    options.frames = frames;
    options.expose_final_state = true;
    options.initial_state_as_inputs = true;
    const auto unrolled = seq::unroll(machine, options);
    core::ProfileOptions profile_options;
    profile_options.sensitivity_exact_max_inputs = 10;
    const auto profile = core::extract_profile(unrolled, profile_options);
    const auto report = core::analyze(profile, eps, 0.01);
    table.add_row({std::to_string(frames),
                   report::format_double(profile.size_s0, 4),
                   report::format_double(report.energy.total_factor, 4),
                   report::format_double(
                       1.0 + (report.energy.total_factor - 1.0) / frames, 4)});
  }
  std::cout << table.to_text() << "\n";

  // 3. The machine serializes to standard sequential .bench.
  std::cout << "sequential .bench form:\n"
            << seq::write_seq_bench_string(machine);
  return 0;
}
