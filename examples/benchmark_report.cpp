// Full benchmark report: regenerates the paper's Section 6 data for the
// whole substitute suite — profiles, every bound, and a markdown table ready
// to paste into documentation. This is the "one command to see everything"
// entry point.
#include <iostream>

#include "core/analyzer.hpp"
#include "gen/suite.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace enb;

  const double delta = 0.01;
  const std::vector<double> epsilons{0.001, 0.01, 0.1};

  report::Table table({"benchmark", "S0", "k", "sw0", "s", "E(0.001)",
                       "E(0.01)", "E(0.1)", "D(0.01)", "P(0.01)",
                       "EDP(0.01)"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const auto mapped = synth::map_to_library(spec.build(), {});
    const core::CircuitProfile profile =
        core::extract_profile(mapped.circuit);

    std::vector<std::string> cells{
        spec.name, report::format_double(profile.size_s0, 5),
        report::format_double(profile.avg_fanin_k, 3),
        report::format_double(profile.avg_activity_sw0, 3),
        report::format_double(profile.sensitivity_s, 4)};
    std::vector<std::string> csv_row = cells;
    for (double eps : epsilons) {
      const auto r = core::analyze(profile, eps, delta);
      cells.push_back(report::format_double(r.energy.total_factor, 4));
      csv_row.push_back(report::format_double(r.energy.total_factor, 8));
    }
    const auto mid = core::analyze(profile, 0.01, delta);
    cells.push_back(report::format_double(mid.metrics.delay, 4));
    cells.push_back(report::format_double(mid.metrics.avg_power, 4));
    cells.push_back(report::format_double(mid.metrics.edp, 4));
    table.add_row(cells);

    csv_row.push_back(report::format_double(mid.metrics.delay, 8));
    csv_rows.push_back(csv_row);
  }

  std::cout << "enbound benchmark report (delta = 0.01, generic fanin-3 "
               "library, 50% leakage baseline)\n\n";
  std::cout << table.to_text() << "\n";
  std::cout << "markdown:\n\n" << table.to_markdown() << "\n";

  report::write_csv_file("bench_out/benchmark_report.csv",
                         {"benchmark", "S0", "k", "sw0", "s", "E_0.001",
                          "E_0.01", "E_0.1", "D_0.01"},
                         csv_rows);
  std::cout << "wrote bench_out/benchmark_report.csv\n";
  return 0;
}
