// Pins the canonical net enumeration: the fault universe's site order and
// the DOT writer's node order both derive from it, so campaign outputs stay
// reproducible across refactors only while this order stays fixed.
#include "netlist/nets.hpp"

#include <gtest/gtest.h>

#include "gen/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dot_io.hpp"

namespace enb::netlist {
namespace {

TEST(EnumerateNets, OrdersByNodeIdWithCanonicalNames) {
  Circuit c("pin");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g = c.add_gate(GateType::kAnd, a, b);
  c.set_node_name(g, "g");
  const NodeId h = c.add_gate(GateType::kNot, g);  // unnamed -> "n3"
  c.add_output(h, "y");

  const std::vector<NetInfo> nets = enumerate_nets(c);
  ASSERT_EQ(nets.size(), 4u);
  EXPECT_EQ(nets[0].node, a);
  EXPECT_EQ(nets[0].name, "a");
  EXPECT_EQ(nets[1].node, b);
  EXPECT_EQ(nets[1].name, "b");
  EXPECT_EQ(nets[2].node, g);
  EXPECT_EQ(nets[2].name, "g");
  EXPECT_EQ(nets[3].node, h);
  EXPECT_EQ(nets[3].name, "n3");
}

TEST(EnumerateNets, PinsC17Order) {
  const Circuit c17 = gen::c17();
  const std::vector<NetInfo> nets = enumerate_nets(c17);
  ASSERT_EQ(nets.size(), c17.node_count());
  // The published c17 structure: 5 inputs then the 6 NAND2 gates in the
  // bench parser's construction order (output cones resolved depth-first:
  // 22's cone completes before 19). A change here silently re-keys every
  // c17 campaign output.
  const std::vector<std::string> expected = {"1",  "2",  "3",  "6",  "7", "10",
                                             "11", "16", "22", "19", "23"};
  ASSERT_EQ(nets.size(), expected.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_EQ(nets[i].node, static_cast<NodeId>(i));
    EXPECT_EQ(nets[i].name, expected[i]) << "net " << i;
  }
}

TEST(EnumerateNets, SharedWithDotWriter) {
  // The DOT writer must list node statements in enumeration order with
  // enumeration names — one order for diagrams and fault reports.
  Circuit c("dot");
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, a);
  c.add_output(g, "y");
  const std::string dot = write_dot_string(c);
  const std::size_t pos_a = dot.find("n0 [label=\"a");
  const std::size_t pos_g = dot.find("n1 [label=\"n1");
  EXPECT_NE(pos_a, std::string::npos);
  EXPECT_NE(pos_g, std::string::npos);
  EXPECT_LT(pos_a, pos_g);
}

}  // namespace
}  // namespace enb::netlist
