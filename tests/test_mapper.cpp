#include "synth/mapper.hpp"

#include <gtest/gtest.h>

#include "bdd/bdd_analysis.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/multipliers.hpp"
#include "gen/parity.hpp"
#include "sim/exhaustive.hpp"

namespace enb::synth {
namespace {

TEST(Mapper, PaperTargetLibraryOnCla) {
  // The paper's setting: generic library, max fanin 3.
  const auto cla = gen::carry_lookahead_adder(16);
  const MapResult result = map_to_library(cla, {});
  EXPECT_TRUE(result.verified);
  EXPECT_LE(result.after.max_fanin, 3);
  EXPECT_GT(result.after.num_gates, 0u);
  // 33 inputs: verification falls back to random vectors.
  EXPECT_FALSE(result.verified_exact);
  EXPECT_TRUE(sim::random_equivalent(cla, result.circuit, 256, 42));
}

TEST(Mapper, ExhaustiveVerificationOnSmallCircuits) {
  const auto c17 = gen::c17();
  const MapResult result = map_to_library(c17, {});
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.verified_exact);
  EXPECT_TRUE(sim::exhaustive_equivalent(c17, result.circuit));
}

TEST(Mapper, NandBasisEndToEnd) {
  MapOptions options;
  options.library = Library::nand_not(2);
  const auto rca = gen::ripple_carry_adder(4);
  const MapResult result = map_to_library(rca, options);
  EXPECT_TRUE(result.verified_exact);
  for (const auto& [type, count] : result.after.gate_histogram) {
    EXPECT_TRUE(type == netlist::GateType::kNand ||
                type == netlist::GateType::kNot ||
                type == netlist::GateType::kBuf)
        << to_string(type);
  }
  EXPECT_LE(result.after.max_fanin, 2);
}

TEST(Mapper, StatsBeforeAfterPopulated) {
  const auto par = gen::parity_tree(8, 4);  // 4-input XORs need narrowing
  MapOptions options;
  options.library = Library::generic(2);
  const MapResult result = map_to_library(par, options);
  EXPECT_EQ(result.before.num_inputs, 8u);
  EXPECT_EQ(result.after.num_inputs, 8u);
  EXPECT_LE(result.after.max_fanin, 2);
  EXPECT_GE(result.after.num_gates, result.before.num_gates);
}

TEST(Mapper, MultiplierMapsAndStaysEquivalent) {
  const auto mult = gen::array_multiplier(4);
  const MapResult result = map_to_library(mult, {});
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(bdd::bdd_equivalent(mult, result.circuit));
}

TEST(Mapper, VerificationCanBeDisabled) {
  MapOptions options;
  options.verify = false;
  const MapResult result = map_to_library(gen::c17(), options);
  EXPECT_FALSE(result.verified);
  EXPECT_GT(result.after.num_gates, 0u);
}

TEST(Mapper, ShannonParityMapsToTwoInput) {
  const auto par = gen::parity_shannon(6);
  MapOptions options;
  options.library = Library::generic(2);
  const MapResult result = map_to_library(par, options);
  EXPECT_TRUE(result.verified_exact);
  EXPECT_LE(result.after.max_fanin, 2);
}

}  // namespace
}  // namespace enb::synth
