#include "synth/library.hpp"

#include <gtest/gtest.h>

namespace enb::synth {
namespace {

using netlist::GateType;

TEST(Library, GenericAllowsStructuralTypes) {
  const Library lib = Library::generic(3);
  EXPECT_EQ(lib.max_fanin(), 3);
  EXPECT_TRUE(lib.allows(GateType::kNand, 3));
  EXPECT_TRUE(lib.allows(GateType::kXor, 2));
  EXPECT_TRUE(lib.allows(GateType::kMaj, 3));
  EXPECT_TRUE(lib.allows(GateType::kNot, 1));
  EXPECT_FALSE(lib.allows(GateType::kAnd, 4));  // fanin above k
}

TEST(Library, GenericTwoInputHasNoMaj) {
  const Library lib = Library::generic(2);
  EXPECT_FALSE(lib.allows_type(GateType::kMaj));
  EXPECT_TRUE(lib.allows(GateType::kXnor, 2));
}

TEST(Library, NandNotBasis) {
  const Library lib = Library::nand_not(2);
  EXPECT_TRUE(lib.allows(GateType::kNand, 2));
  EXPECT_TRUE(lib.allows(GateType::kNot, 1));
  EXPECT_TRUE(lib.allows(GateType::kBuf, 1));
  EXPECT_FALSE(lib.allows_type(GateType::kAnd));
  EXPECT_FALSE(lib.allows_type(GateType::kXor));
  EXPECT_FALSE(lib.allows_type(GateType::kOr));
}

TEST(Library, AndOrNotBasis) {
  const Library lib = Library::and_or_not(3);
  EXPECT_TRUE(lib.allows_type(GateType::kAnd));
  EXPECT_TRUE(lib.allows_type(GateType::kOr));
  EXPECT_FALSE(lib.allows_type(GateType::kXor));
  EXPECT_FALSE(lib.allows_type(GateType::kNand));
}

TEST(Library, InputsAndConstantsAlwaysAllowed) {
  const Library lib = Library::nand_not(2);
  EXPECT_TRUE(lib.allows(GateType::kInput, 0));
  EXPECT_TRUE(lib.allows(GateType::kConst0, 0));
  EXPECT_TRUE(lib.allows(GateType::kConst1, 0));
}

TEST(Library, ArityRangeInteractsWithAllows) {
  const Library lib = Library::generic(4);
  EXPECT_FALSE(lib.allows(GateType::kNot, 2));  // NOT is unary
  EXPECT_FALSE(lib.allows(GateType::kMaj, 4));  // MAJ is exactly 3
  EXPECT_TRUE(lib.allows(GateType::kOr, 4));
}

TEST(Library, RejectsTinyFanin) {
  EXPECT_THROW((void)Library::generic(1), std::invalid_argument);
}

TEST(Library, NamesIdentifyConfiguration) {
  EXPECT_EQ(Library::generic(3).name(), "generic3");
  EXPECT_EQ(Library::nand_not(2).name(), "nand_not2");
}

}  // namespace
}  // namespace enb::synth
