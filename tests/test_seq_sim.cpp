#include "seq/seq_sim.hpp"

#include <gtest/gtest.h>

#include "seq/seq_gen.hpp"
#include "seq/unroll.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::seq {
namespace {

TEST(SeqSim, LanesAreIndependentMachines) {
  const SeqCircuit seq = counter(2);
  SeqSim sim(seq);
  // Enable only lane 0 for one cycle: lane 0 advances, lane 1 does not.
  const std::vector<sim::Word> enable_lane0{1};
  (void)sim.step(enable_lane0);
  EXPECT_EQ(sim.state()[0] & 1U, 1u);        // lane 0 counted
  EXPECT_EQ((sim.state()[0] >> 1) & 1U, 0u); // lane 1 held
}

TEST(SeqSim, ResetRestoresInitialState) {
  const SeqCircuit seq = lfsr_maximal(4);
  SeqSim sim(seq);
  const std::vector<sim::Word> none{};
  const auto s0 = sim.state();
  (void)sim.step(none);
  (void)sim.step(none);
  EXPECT_NE(sim.state(), s0);
  sim.reset();
  EXPECT_EQ(sim.state(), s0);
}

TEST(SeqSim, AgreesWithUnrolledCircuit) {
  // Cycle simulation and time-frame unrolling must produce identical output
  // streams for the same input stream.
  const SeqCircuit seq = sequence_detector(0b1101, 4);
  const int cycles = 8;
  sim::Xoshiro256 rng(5);
  std::vector<sim::Word> stream(static_cast<std::size_t>(cycles));
  for (auto& w : stream) w = rng.next();

  SeqSim cycle_sim(seq);
  std::vector<sim::Word> cycle_outputs;
  for (int t = 0; t < cycles; ++t) {
    const std::vector<sim::Word> in{stream[static_cast<std::size_t>(t)]};
    cycle_outputs.push_back(cycle_sim.step(in)[0]);
  }

  UnrollOptions options;
  options.frames = cycles;
  const netlist::Circuit u = unroll(seq, options);
  sim::LogicSim flat(u);
  flat.eval(stream);
  const auto flat_outputs = flat.output_values();
  ASSERT_EQ(flat_outputs.size(), cycle_outputs.size());
  for (int t = 0; t < cycles; ++t) {
    EXPECT_EQ(flat_outputs[static_cast<std::size_t>(t)],
              cycle_outputs[static_cast<std::size_t>(t)])
        << "cycle " << t;
  }
}

TEST(NoisySeqSim, ZeroEpsilonMatchesClean) {
  const SeqCircuit seq = lfsr_maximal(5);
  SeqSim clean(seq);
  NoisySeqSim noisy(seq, 0.0, 9);
  const std::vector<sim::Word> none{};
  for (int t = 0; t < 10; ++t) {
    const auto a = clean.step(none);
    const auto b = noisy.step(none);
    EXPECT_EQ(a, b) << "cycle " << t;
  }
}

TEST(NoisySeqSim, NoiseDivergesState) {
  const SeqCircuit seq = lfsr_maximal(5);
  SeqSim clean(seq);
  NoisySeqSim noisy(seq, 0.2, 10);
  const std::vector<sim::Word> none{};
  bool diverged = false;
  for (int t = 0; t < 20 && !diverged; ++t) {
    (void)clean.step(none);
    (void)noisy.step(none);
    diverged = clean.state() != noisy.state();
  }
  EXPECT_TRUE(diverged);
}

TEST(NoisySeqSim, RejectsBadEpsilon) {
  const SeqCircuit seq = counter(2);
  EXPECT_THROW(NoisySeqSim(seq, 0.7, 1), std::invalid_argument);
}

TEST(SeqReliability, ErrorAccumulatesOverCycles) {
  // A counter's state error is absorbing (a flipped bit never self-corrects
  // under pure counting), so state error grows with cycles.
  const SeqCircuit seq = counter(4);
  SeqReliabilityOptions options;
  options.cycles = 12;
  options.word_passes = 64;
  const auto points = estimate_seq_reliability(seq, 0.01, options);
  ASSERT_EQ(points.size(), 12u);
  EXPECT_LT(points[0].state_error, points[5].state_error);
  EXPECT_LT(points[5].state_error, points[11].state_error);
}

TEST(SeqReliability, FirstCycleMatchesCombinationalDelta) {
  // On cycle 0 the machine is just its combinational core with known state:
  // the output-error rate must be consistent with a one-shot evaluation.
  const SeqCircuit seq = counter(4);
  SeqReliabilityOptions options;
  options.cycles = 1;
  options.word_passes = 512;
  const auto points = estimate_seq_reliability(seq, 0.02, options);
  // Counter core has 8 gates (XOR+AND per bit); outputs include state
  // passthroughs (error-free at cycle 0) and carry_out (4 gates deep).
  EXPECT_GT(points[0].output_error, 0.0);
  EXPECT_LT(points[0].output_error, 0.2);
}

TEST(SeqReliability, ZeroNoiseZeroError) {
  const auto points = estimate_seq_reliability(lfsr_maximal(4), 0.0);
  for (const auto& p : points) {
    EXPECT_EQ(p.output_error, 0.0);
    EXPECT_EQ(p.state_error, 0.0);
  }
}

TEST(SeqReliability, Validation) {
  SeqReliabilityOptions options;
  options.cycles = 0;
  EXPECT_THROW((void)estimate_seq_reliability(counter(2), 0.01, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::seq
