#include "core/leakage_model.hpp"

#include <gtest/gtest.h>

#include "core/activity_model.hpp"

namespace enb::core {
namespace {

TEST(LeakageModel, Theorem3ClosedForm) {
  // ratio = ((1-2e)^2 + 2e(1-e)/(1-sw0)) / ((1-2e)^2 + 2e(1-e)/sw0).
  const double eps = 0.1;
  const double sw0 = 0.25;
  const double xi2 = 0.8 * 0.8;
  const double off = 2 * 0.1 * 0.9;
  EXPECT_NEAR(leakage_ratio(sw0, eps),
              (xi2 + off / 0.75) / (xi2 + off / 0.25), 1e-12);
}

TEST(LeakageModel, InvariantAtHalfActivity) {
  // Figure 4: "the relative contribution stays the same if sw0 is exactly
  // 0.5".
  for (double eps : {0.001, 0.01, 0.1, 0.3, 0.49}) {
    EXPECT_NEAR(leakage_ratio(0.5, eps), 1.0, 1e-12) << "eps=" << eps;
  }
}

TEST(LeakageModel, DecreasesForQuietCircuits) {
  // sw0 < 0.5: leakage share drops with noise (gates get busier).
  for (double sw0 : {0.1, 0.25, 0.4}) {
    double prev = 1.0;
    for (double eps : {0.01, 0.05, 0.1, 0.2, 0.3}) {
      const double r = leakage_ratio(sw0, eps);
      EXPECT_LT(r, prev) << "sw0=" << sw0 << " eps=" << eps;
      prev = r;
    }
    EXPECT_LT(prev, 1.0);
  }
}

TEST(LeakageModel, IncreasesForBusyCircuits) {
  for (double sw0 : {0.6, 0.75, 0.9}) {
    double prev = 1.0;
    for (double eps : {0.01, 0.05, 0.1, 0.2, 0.3}) {
      const double r = leakage_ratio(sw0, eps);
      EXPECT_GT(r, prev) << "sw0=" << sw0 << " eps=" << eps;
      prev = r;
    }
  }
}

TEST(LeakageModel, CleanChannelIsUnity) {
  for (double sw0 : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(leakage_ratio(sw0, 0.0), 1.0);
  }
}

TEST(LeakageModel, SymmetrySwAroundHalf) {
  // ratio(sw0, eps) * ratio(1-sw0, eps) == 1 (swapping busy/idle inverts).
  for (double eps : {0.05, 0.2}) {
    for (double sw0 : {0.1, 0.3, 0.45}) {
      EXPECT_NEAR(leakage_ratio(sw0, eps) * leakage_ratio(1 - sw0, eps), 1.0,
                  1e-12);
    }
  }
}

TEST(LeakageModel, ConsistentWithActivityModel) {
  // ratio == (idle factor)/(activity factor) by construction.
  const double eps = 0.07;
  const double sw0 = 0.33;
  EXPECT_NEAR(leakage_ratio(sw0, eps),
              idle_ratio(sw0, eps) / activity_ratio(sw0, eps), 1e-12);
}

TEST(LeakageModel, AbsoluteFractionScales) {
  EXPECT_NEAR(noisy_leakage_fraction(2.0, 0.25, 0.1),
              2.0 * leakage_ratio(0.25, 0.1), 1e-12);
  EXPECT_THROW((void)noisy_leakage_fraction(-1.0, 0.25, 0.1),
               std::invalid_argument);
}

TEST(LeakageModel, DomainChecks) {
  EXPECT_THROW((void)leakage_ratio(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)leakage_ratio(1.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)leakage_ratio(0.5, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
