// Property tests tying the ft/ redundancy transforms to the fault engine:
// fault-free, NMR and multiplexed variants are exhaustively input-equivalent
// to the base circuit; under single injected stuck-at faults, the redundancy
// masks exactly where the constructions promise — every replica-internal
// fault for NMR, every fault anywhere for von Neumann multiplexing with a
// restorative stage — while the unprotected base exposes its whole collapsed
// universe.
#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_model.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "sim/bitpack.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"

namespace enb::ft {
namespace {

using netlist::Circuit;
using netlist::NodeId;

// Decoded exhaustive equivalence for bundled circuits: every logical
// assignment, inputs broadcast per bundle, outputs majority-decoded.
bool decoded_exhaustive_equivalent(const MultiplexedCircuit& mc,
                                   const Circuit& base) {
  bool equal = true;
  sim::LogicSim mux_sim(mc.circuit);
  sim::LogicSim base_sim(base);
  const auto width = static_cast<std::size_t>(mc.bundle_width);
  std::vector<sim::Word> mux_inputs(mc.circuit.num_inputs());
  std::vector<sim::Word> base_inputs(base.num_inputs());
  sim::LaneCounter counter(mc.bundle_width);
  sim::for_each_exhaustive_block(
      static_cast<int>(base.num_inputs()),
      [&](std::uint64_t, std::span<const sim::Word> inputs,
          sim::Word valid) {
        for (std::size_t i = 0; i < base.num_inputs(); ++i) {
          base_inputs[i] = inputs[i];
          for (std::size_t w = 0; w < width; ++w) {
            mux_inputs[i * width + w] = inputs[i];
          }
        }
        mux_sim.eval(mux_inputs);
        base_sim.eval(base_inputs);
        for (std::size_t o = 0; o < base.num_outputs(); ++o) {
          counter.reset();
          for (const NodeId wire : mc.output_bundles[o]) {
            counter.add(mux_sim.value(wire));
          }
          const sim::Word decoded = counter.greater_than(mc.bundle_width / 2);
          if ((decoded ^ base_sim.value(base.outputs()[o])) & valid) {
            equal = false;
          }
        }
      });
  return equal;
}

TEST(FtFaultProperties, NmrIsExhaustivelyEquivalentWhenFaultFree) {
  for (const char* name : {"c17", "parity8", "rca8"}) {
    const Circuit base = gen::find_benchmark(name).build();
    const NmrResult nmr = nmr_transform(base);
    EXPECT_TRUE(sim::exhaustive_equivalent(base, nmr.circuit)) << name;
  }
}

TEST(FtFaultProperties, MultiplexDecodesEquivalentWhenFaultFree) {
  for (const char* name : {"c17", "parity8"}) {
    const Circuit base = gen::find_benchmark(name).build();
    const MultiplexedCircuit mc = multiplex_transform(base);
    EXPECT_TRUE(decoded_exhaustive_equivalent(mc, base)) << name;
  }
}

TEST(FtFaultProperties, BaseC17ExposesItsWholeCollapsedUniverse) {
  // The masking properties below are only meaningful because the
  // unprotected circuit exposes every fault: exhaustive self-coverage 1.
  const Circuit base = gen::c17();
  fault::CampaignOptions options;
  options.exhaustive = true;
  const fault::FaultCampaignResult result =
      fault::run_campaign(base, nullptr, options);
  EXPECT_EQ(result.detected, result.classes);
}

TEST(FtFaultProperties, NmrMasksEverySingleReplicaFault) {
  const Circuit base = gen::c17();
  const NmrResult nmr = nmr_transform(base);
  fault::CampaignOptions options;
  options.exhaustive = true;
  const fault::FaultUniverse universe = fault::FaultUniverse::build(
      nmr.circuit, options.collapse);
  const fault::FaultCampaignResult result =
      fault::run_campaign(nmr.circuit, &base, options);
  ASSERT_EQ(result.detection_counts.size(), universe.num_classes());

  std::size_t replica_sites = 0;
  for (std::size_t s = 0; s < universe.num_sites(); ++s) {
    const fault::FaultSite& site = universe.site(s);
    if (site.node < nmr.replica_begin || site.node >= nmr.replica_end) {
      continue;
    }
    ++replica_sites;
    EXPECT_EQ(result.detection_counts[universe.class_of(s)], 0u)
        << "replica fault " << to_string(site.value) << " on node "
        << site.node << " escaped the voters";
  }
  // Sanity: the sweep actually covered the three replicas, and some voter
  // fault stays observable (the construction does not promise more).
  EXPECT_GE(replica_sites, 2 * 3 * base.gate_count());
  EXPECT_GT(result.detected, 0u);
}

TEST(FtFaultProperties, MultiplexMasksEverySingleFault) {
  // One restorative stage scrubs any single executive fault, and the output
  // majority decode absorbs any single restorative/output-wire fault: no
  // single stuck-at is observable at all.
  const Circuit base = gen::c17();
  const MultiplexedCircuit mc = multiplex_transform(base);
  fault::CampaignOptions options;
  options.exhaustive = true;
  options.bundle_width = mc.bundle_width;
  const fault::FaultCampaignResult result =
      fault::run_campaign(mc.circuit, &base, options);
  EXPECT_EQ(result.detected, 0u);
  EXPECT_DOUBLE_EQ(result.masked_fraction, 1.0);
  EXPECT_GT(result.gate_overhead, static_cast<double>(mc.bundle_width));
}

TEST(FtFaultProperties, CascadedTmrKeepsReplicaMaskingOneLevelDeep) {
  // One TMR level of the already-triplicated circuit: still exhaustively
  // equivalent, and a random-pattern masking campaign sees strictly more
  // masking than the flat circuit (0) without any voter-region bookkeeping.
  const Circuit base = gen::c17();
  const Circuit tmr = cascaded_tmr(base, 1);
  EXPECT_TRUE(sim::exhaustive_equivalent(base, tmr));
  fault::CampaignOptions options;
  options.exhaustive = true;
  const fault::FaultCampaignResult protected_result =
      fault::run_campaign(tmr, &base, options);
  const fault::FaultCampaignResult flat_result =
      fault::run_campaign(base, nullptr, options);
  EXPECT_GT(protected_result.masked_fraction, flat_result.masked_fraction);
}

}  // namespace
}  // namespace enb::ft
