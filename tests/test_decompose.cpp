#include "synth/decompose.hpp"

#include <gtest/gtest.h>

#include "gen/adders.hpp"
#include "netlist/stats.hpp"
#include "sim/exhaustive.hpp"

namespace enb::synth {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit wide_gate(GateType type, int width) {
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < width; ++i) ins.push_back(c.add_input());
  c.add_output(c.add_gate(type, ins));
  return c;
}

class ReduceFaninTest
    : public ::testing::TestWithParam<std::tuple<GateType, int, int>> {};

TEST_P(ReduceFaninTest, PreservesFunctionAndRespectsBound) {
  const auto [type, width, k] = GetParam();
  const Circuit original = wide_gate(type, width);
  const Circuit reduced = reduce_fanin(original, k);
  EXPECT_TRUE(sim::exhaustive_equivalent(original, reduced))
      << to_string(type) << " width=" << width << " k=" << k;
  EXPECT_LE(netlist::compute_stats(reduced).max_fanin, k);
}

INSTANTIATE_TEST_SUITE_P(
    WideGates, ReduceFaninTest,
    ::testing::Combine(::testing::Values(GateType::kAnd, GateType::kNand,
                                         GateType::kOr, GateType::kNor,
                                         GateType::kXor, GateType::kXnor),
                       ::testing::Values(4, 7, 9),
                       ::testing::Values(2, 3, 4)));

TEST(ReduceFanin, MajWithTwoInputTarget) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  const Circuit reduced = reduce_fanin(c, 2);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, reduced));
  EXPECT_LE(netlist::compute_stats(reduced).max_fanin, 2);
}

TEST(ReduceFanin, MajWithThreeInputTargetUnchanged) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  const Circuit reduced = reduce_fanin(c, 3);
  EXPECT_EQ(reduced.gate_count(), 1u);
}

TEST(ReduceFanin, DepthGrowsLogarithmically) {
  const Circuit wide = wide_gate(GateType::kAnd, 16);
  const Circuit reduced = reduce_fanin(wide, 2);
  // Balanced binary tree over 16 operands: depth 4.
  EXPECT_EQ(netlist::compute_stats(reduced).depth, 4);
}

TEST(ReduceFanin, RealisticCircuit) {
  const Circuit cla = gen::carry_lookahead_adder(8);
  EXPECT_GT(netlist::compute_stats(cla).max_fanin, 3);
  const Circuit reduced = reduce_fanin(cla, 3);
  EXPECT_LE(netlist::compute_stats(reduced).max_fanin, 3);
  EXPECT_TRUE(sim::exhaustive_equivalent(cla, reduced));
}

TEST(ReduceFanin, RejectsBadTarget) {
  EXPECT_THROW((void)reduce_fanin(wide_gate(GateType::kAnd, 4), 1),
               std::invalid_argument);
}

TEST(ConvertToBasis, NandNotXor) {
  const Circuit x = wide_gate(GateType::kXor, 2);
  const Circuit converted = convert_to_basis(x, Library::nand_not(2));
  EXPECT_TRUE(sim::exhaustive_equivalent(x, converted));
  const auto stats = netlist::compute_stats(converted);
  EXPECT_EQ(stats.gate_histogram.count(GateType::kXor), 0u);
  EXPECT_EQ(stats.gate_histogram.at(GateType::kNand), 4u);
}

TEST(ConvertToBasis, AndOrNotXnor) {
  const Circuit x = wide_gate(GateType::kXnor, 3);
  const Circuit converted = convert_to_basis(x, Library::and_or_not(3));
  EXPECT_TRUE(sim::exhaustive_equivalent(x, converted));
  const auto stats = netlist::compute_stats(converted);
  EXPECT_EQ(stats.gate_histogram.count(GateType::kXor), 0u);
  EXPECT_EQ(stats.gate_histogram.count(GateType::kXnor), 0u);
  EXPECT_EQ(stats.gate_histogram.count(GateType::kNand), 0u);
}

TEST(ConvertToBasis, MajIntoNand) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  const Circuit converted = convert_to_basis(c, Library::nand_not(2));
  EXPECT_TRUE(sim::exhaustive_equivalent(c, converted));
  EXPECT_EQ(netlist::compute_stats(converted).gate_histogram.count(GateType::kMaj), 0u);
}

TEST(ConvertToBasis, AllowedTypesPassThrough) {
  const Circuit a = wide_gate(GateType::kAnd, 3);
  const Circuit converted = convert_to_basis(a, Library::generic(3));
  EXPECT_EQ(converted.gate_count(), a.gate_count());
}

TEST(ConvertToBasis, FullAdderToNand) {
  const Circuit fa = gen::ripple_carry_adder(2);
  const Circuit converted = convert_to_basis(fa, Library::nand_not(2));
  EXPECT_TRUE(sim::exhaustive_equivalent(fa, converted));
  const auto stats = netlist::compute_stats(converted);
  for (const auto& [type, count] : stats.gate_histogram) {
    EXPECT_TRUE(type == GateType::kNand || type == GateType::kNot ||
                type == GateType::kBuf)
        << to_string(type);
  }
}

}  // namespace
}  // namespace enb::synth
