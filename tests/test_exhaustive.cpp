#include "sim/exhaustive.hpp"

#include <gtest/gtest.h>

#include "sim/bitpack.hpp"

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit parity(int n) {
  Circuit c("parity");
  NodeId acc = c.add_input();
  for (int i = 1; i < n; ++i) {
    acc = c.add_gate(GateType::kXor, acc, c.add_input());
  }
  c.add_output(acc);
  return c;
}

TEST(Exhaustive, PatternsEnumerateAssignments) {
  // Lane L of block B encodes assignment B*64+L; verify for n=8.
  const int n = 8;
  std::vector<Word> words;
  for (std::uint64_t block : {std::uint64_t{0}, std::uint64_t{3}}) {
    fill_exhaustive_block(n, block, words);
    for (int lane = 0; lane < 64; ++lane) {
      const std::uint64_t assignment = block * 64 + lane;
      for (int i = 0; i < n; ++i) {
        const bool expected = ((assignment >> i) & 1U) != 0;
        const bool actual = ((words[i] >> lane) & 1U) != 0;
        EXPECT_EQ(actual, expected)
            << "block " << block << " lane " << lane << " input " << i;
      }
    }
  }
}

TEST(Exhaustive, PatternOutOfRangeThrows) {
  // Inputs >= 6 are block-selected, not pattern-toggled; silently returning
  // a constant word here would fabricate wrong truth tables.
  EXPECT_THROW((void)exhaustive_pattern(6), std::invalid_argument);
  EXPECT_THROW((void)exhaustive_pattern(64), std::invalid_argument);
  EXPECT_THROW((void)exhaustive_pattern(-1), std::invalid_argument);
}

TEST(Exhaustive, PatternsAlternateAtTheirPeriod) {
  for (int i = 0; i < 6; ++i) {
    const Word w = exhaustive_pattern(i);
    // Bit L of pattern i must be bit i of the assignment value L.
    for (int lane = 0; lane < 64; ++lane) {
      const bool expected = ((lane >> i) & 1) != 0;
      EXPECT_EQ(((w >> lane) & 1ULL) != 0, expected)
          << "pattern " << i << " lane " << lane;
    }
  }
}

TEST(Exhaustive, BlockCount) {
  EXPECT_EQ(exhaustive_block_count(0), 1ULL);
  EXPECT_EQ(exhaustive_block_count(5), 1ULL);
  EXPECT_EQ(exhaustive_block_count(6), 1ULL);
  EXPECT_EQ(exhaustive_block_count(7), 2ULL);
  EXPECT_EQ(exhaustive_block_count(10), 16ULL);
  EXPECT_THROW((void)exhaustive_block_count(27), std::invalid_argument);
  EXPECT_THROW((void)exhaustive_block_count(-1), std::invalid_argument);
}

TEST(Exhaustive, ValidLanesForSmallN) {
  int calls = 0;
  for_each_exhaustive_block(
      3, [&](std::uint64_t, std::span<const Word>, Word valid) {
        ++calls;
        EXPECT_EQ(valid, low_mask(8));
      });
  EXPECT_EQ(calls, 1);
}

TEST(Exhaustive, ParityTruthTableHasBalancedOnes) {
  for (int n : {3, 7, 10}) {
    const auto tables = truth_tables(parity(n));
    ASSERT_EQ(tables.size(), 1u);
    std::int64_t ones = 0;
    for (Word w : tables[0]) ones += popcount(w);
    // Parity is balanced: exactly half the assignments are 1. For n < 6 the
    // table is masked to the valid lanes.
    EXPECT_EQ(ones, std::int64_t{1} << (n - 1)) << "n=" << n;
  }
}

TEST(Exhaustive, TruthTableMatchesDirectEval) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  const auto tables = truth_tables(c);
  // maj(a,b,d) for assignments 0..7: 0,0,0,1,0,1,1,1.
  EXPECT_EQ(tables[0][0] & 0xFF, 0b11101000ULL);
}

TEST(Exhaustive, EquivalenceDetectsMatch) {
  const Circuit p1 = parity(8);
  // Build a different-shaped parity: balanced tree.
  Circuit p2("tree");
  std::vector<NodeId> layer;
  for (int i = 0; i < 8; ++i) layer.push_back(p2.add_input());
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(p2.add_gate(GateType::kXor, layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = next;
  }
  p2.add_output(layer[0]);
  EXPECT_TRUE(exhaustive_equivalent(p1, p2));
}

TEST(Exhaustive, EquivalenceDetectsMismatch) {
  Circuit c1;
  const NodeId a1 = c1.add_input();
  const NodeId b1 = c1.add_input();
  c1.add_output(c1.add_gate(GateType::kAnd, a1, b1));
  Circuit c2;
  const NodeId a2 = c2.add_input();
  const NodeId b2 = c2.add_input();
  c2.add_output(c2.add_gate(GateType::kOr, a2, b2));
  EXPECT_FALSE(exhaustive_equivalent(c1, c2));
}

TEST(Exhaustive, EquivalenceChecksInterface) {
  Circuit c1;
  c1.add_output(c1.add_input());
  Circuit c2;
  const NodeId a = c2.add_input();
  c2.add_input();
  c2.add_output(a);
  EXPECT_FALSE(exhaustive_equivalent(c1, c2));
}

}  // namespace
}  // namespace enb::sim
