// Cross-validation of the two analysis engines: the BDD package's exact
// probabilities/influences must agree with exhaustive simulation everywhere,
// and with Monte-Carlo within statistical tolerance, across generator and
// random circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd_analysis.hpp"
#include "gen/adders.hpp"
#include "gen/comparators.hpp"
#include "gen/iscas.hpp"
#include "gen/mux_decoder.hpp"
#include "gen/parity.hpp"
#include "gen/random_circuit.hpp"
#include "sim/activity.hpp"
#include "sim/sensitivity.hpp"

namespace enb {
namespace {

struct NamedCircuit {
  const char* name;
  netlist::Circuit (*build)();
};

class BddVsSimTest : public ::testing::TestWithParam<NamedCircuit> {};

TEST_P(BddVsSimTest, ExactProbabilitiesMatchExhaustive) {
  const netlist::Circuit c = GetParam().build();
  const auto bdd_probs = bdd::exact_signal_probabilities(c);
  const auto sim_result = sim::exact_activity(c);
  ASSERT_EQ(bdd_probs.size(), sim_result.one_probability.size());
  for (std::size_t id = 0; id < bdd_probs.size(); ++id) {
    EXPECT_NEAR(bdd_probs[id], sim_result.one_probability[id], 1e-12)
        << c.name() << " node " << id;
  }
}

TEST_P(BddVsSimTest, MonteCarloWithinTolerance) {
  const netlist::Circuit c = GetParam().build();
  const auto exact = bdd::exact_activity_bdd(c);
  sim::ActivityOptions options;
  options.sample_pairs = 1 << 12;
  const auto mc = sim::estimate_activity(c, options);
  // ~260k lane samples: generous 5-sigma-ish bound of 0.01.
  EXPECT_NEAR(mc.avg_gate_toggle_rate, exact.avg_gate_toggle_rate, 0.01)
      << c.name();
}

TEST_P(BddVsSimTest, InfluencesMatchSimulation) {
  const netlist::Circuit c = GetParam().build();
  const auto bdd_inf = bdd::exact_influences(c);
  const auto sim_sens = sim::compute_sensitivity(c);
  ASSERT_EQ(bdd_inf.size(), sim_sens.influence.size());
  for (std::size_t i = 0; i < bdd_inf.size(); ++i) {
    EXPECT_NEAR(bdd_inf[i], sim_sens.influence[i], 1e-9)
        << c.name() << " input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, BddVsSimTest,
    ::testing::Values(
        NamedCircuit{"c17", [] { return gen::c17(); }},
        NamedCircuit{"parity9k3", [] { return gen::parity_tree(9, 3); }},
        NamedCircuit{"parity7shannon", [] { return gen::parity_shannon(7); }},
        NamedCircuit{"rca4", [] { return gen::ripple_carry_adder(4); }},
        NamedCircuit{"cla4", [] { return gen::carry_lookahead_adder(4); }},
        NamedCircuit{"cmp5", [] { return gen::magnitude_comparator(5); }},
        NamedCircuit{"mux8", [] { return gen::mux_tree(3); }},
        NamedCircuit{"rand404", [] {
                       gen::RandomCircuitOptions options;
                       options.seed = 404;
                       options.num_inputs = 9;
                       options.num_gates = 60;
                       return gen::random_circuit(options);
                     }}),
    [](const ::testing::TestParamInfo<NamedCircuit>& info) {
      return std::string(info.param.name);
    });

TEST(BddVsSim, BiasedInputsAgree) {
  const auto c = gen::ripple_carry_adder(3);
  bdd::BddAnalysisOptions bdd_options;
  bdd_options.input_one_probability = 0.8;
  const auto probs = bdd::exact_signal_probabilities(c, bdd_options);
  sim::ActivityOptions mc_options;
  mc_options.input_one_probability = 0.8;
  mc_options.sample_pairs = 1 << 13;
  const auto mc = sim::estimate_activity(c, mc_options);
  for (netlist::NodeId id = 0; id < c.node_count(); ++id) {
    EXPECT_NEAR(mc.one_probability[id], probs[id], 0.01) << "node " << id;
  }
}

}  // namespace
}  // namespace enb
