// Observability layer contract tests: counters stay exact under concurrent
// writers, histogram quantiles bracket the exact values they summarize, the
// trace ring drops oldest and exports well-formed Chrome trace JSON, and —
// the invariant everything else in obs/ hangs off — tracing is purely
// observational: batch output bytes are identical with the recorder on or
// off, for any thread count (the determinism CI job reruns this under
// ENB_THREADS=64).
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "gen/suite.hpp"

namespace enb::obs {
namespace {

// ---- minimal JSON validity scanner ----------------------------------------
// Enough of RFC 8259 to prove the trace export parses: values, objects,
// arrays, strings with escapes, numbers. CI additionally runs the emitted
// file through `python3 -m json.tool`; this keeps the property pinned in
// unit tests too.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(
                                            text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- Counter --------------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(ObsCounter, AddWithIncrement) {
  Counter counter;
  counter.add(5);
  counter.add();
  counter.add(0);
  EXPECT_EQ(counter.value(), 6u);
}

// ---- Gauge ----------------------------------------------------------------

TEST(ObsGauge, SetIsLastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
}

TEST(ObsGauge, ConcurrentAddsSumExactly) {
  // Each delta is a power of two, so the CAS-looped double additions are
  // exact in any order — lost updates (the bug the loop exists to prevent)
  // would show up as a short total.
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge.add(0.5);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.value(), kThreads * kAddsPerThread * 0.5);
}

// ---- Histogram ------------------------------------------------------------

TEST(ObsHistogram, BoundariesAreAscendingFourPerDecade) {
  const std::vector<double>& bounds = Histogram::boundaries();
  ASSERT_EQ(bounds.size(), 37u);
  EXPECT_NEAR(bounds.front(), 1e-7, 1e-12);
  EXPECT_NEAR(bounds.back(), 1e2, 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // Log-uniform spacing: every step is one quarter decade.
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 0.25), 1e-9);
  }
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
  const Histogram histogram;
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(ObsHistogram, CountDerivesFromBucketsAndSumAccumulates) {
  Histogram histogram;
  const std::vector<double> values = {1e-6, 5e-4, 0.01, 0.7, 3.0};
  double exact_sum = 0.0;
  for (const double v : values) {
    histogram.observe(v);
    exact_sum += v;
  }
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, values.size());
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(snap.count, bucket_total);
  // Sum is tracked in integer nanoseconds: exact to 1 ns per observation.
  EXPECT_NEAR(snap.sum, exact_sum, 1e-8 * static_cast<double>(values.size()));
}

// A quantile estimate must land inside the bucket that owns the exact
// quantile: the interpolation error is bounded by the bucket width.
TEST(ObsHistogram, QuantilesBracketExactValues) {
  Histogram histogram;
  // 90 fast requests at 1 ms, 10 slow ones at 1 s: p50 is exactly a fast
  // one, p99 a slow one.
  for (int i = 0; i < 90; ++i) histogram.observe(1e-3);
  for (int i = 0; i < 10; ++i) histogram.observe(1.0);
  const Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 100u);

  // Buckets are a quarter decade wide, so the estimate is within a quarter
  // decade of the exact value in log space. (The exact values sit on bucket
  // edges up to pow() rounding, so the owning bucket may be either
  // neighbor — the log-distance bound holds regardless.)
  const double p50 = snap.quantile(0.5);
  EXPECT_LE(std::abs(std::log10(p50) - std::log10(1e-3)), 0.25 + 1e-9);

  const double p99 = snap.quantile(0.99);
  EXPECT_LE(std::abs(std::log10(p99) - std::log10(1.0)), 0.25 + 1e-9);

  // Quantiles are monotone in q.
  double previous = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, previous) << "q = " << q;
    previous = estimate;
  }
}

TEST(ObsHistogram, OverflowAndClampedObservations) {
  Histogram histogram;
  histogram.observe(1e9);   // far beyond the last finite bucket
  histogram.observe(-4.0);  // clock skew clamps to zero
  histogram.observe(std::numeric_limits<double>::quiet_NaN());
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets.back(), 1u);  // the +Inf bucket
  EXPECT_EQ(snap.buckets.front(), 2u);  // both clamped zeros
  // The overflow bucket reports its lower edge rather than inventing an
  // upper one.
  EXPECT_EQ(snap.quantile(1.0), Histogram::boundaries().back());
}

// ---- Registry -------------------------------------------------------------

TEST(ObsRegistry, SameNameAndLabelReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("requests-total", "verb", "load");
  Counter& b = registry.counter("requests-total", "verb", "load");
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("requests-total", "verb", "batch");
  EXPECT_NE(&a, &other);
}

TEST(ObsRegistry, KindAndLabelMismatchesThrow) {
  Registry registry;
  registry.counter("requests-total", "verb", "load");
  EXPECT_THROW(registry.gauge("requests-total", "verb", "load"),
               std::invalid_argument);
  // A new label value joining the family must keep the family's shape too.
  EXPECT_THROW(registry.histogram("requests-total", "verb", "other"),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("requests-total", "kind", "load"),
               std::invalid_argument);
}

TEST(ObsRegistry, RejectsNonKebabNames) {
  Registry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("Uppercase-total"), std::invalid_argument);
  EXPECT_THROW(registry.counter("snake_case"), std::invalid_argument);
  EXPECT_THROW(registry.counter("-leading"), std::invalid_argument);
  EXPECT_THROW(registry.counter("trailing-"), std::invalid_argument);
  EXPECT_THROW(registry.counter("metric", "key"), std::invalid_argument);
}

TEST(ObsRegistry, PrometheusExposition) {
  Registry registry;
  registry.counter("test-requests-total", "verb", "load").add(3);
  registry.counter("test-requests-total", "verb", "batch").add(7);
  registry.gauge("test-queue-depth").set(2.5);
  registry.histogram("test-seconds").observe(1e-3);
  registry.histogram("test-seconds").observe(2.0);

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE enb_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("enb_test_requests_total{verb=\"batch\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("enb_test_requests_total{verb=\"load\"} 3\n"),
            std::string::npos);
  // Entries within a family sort by label value: batch before load.
  EXPECT_LT(text.find("verb=\"batch\""), text.find("verb=\"load\""));
  EXPECT_NE(text.find("# TYPE enb_test_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("enb_test_queue_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE enb_test_seconds histogram"), std::string::npos);
  // Cumulative buckets end at +Inf == count.
  EXPECT_NE(text.find("enb_test_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("enb_test_seconds_count 2\n"), std::string::npos);
  // One TYPE line per family, not per labeled entry.
  const std::string type_line = "# TYPE enb_test_requests_total";
  EXPECT_EQ(text.find(type_line), text.rfind(type_line));
}

TEST(ObsRegistry, GlobalCarriesTheProcessInstrumentNames) {
  // The wired-in hot paths register on first use; touching them here pins
  // the stable names the serve `metrics` verb and CI greps rely on.
  Registry& registry = Registry::global();
  registry.counter("exec-tasks-total");
  registry.counter("serve-requests-total", "verb", "batch");
  registry.histogram("serve-request-seconds", "verb", "batch");
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("enb_exec_tasks_total"), std::string::npos);
  EXPECT_NE(text.find("enb_serve_requests_total{verb=\"batch\"}"),
            std::string::npos);
  EXPECT_NE(text.find("enb_serve_request_seconds_bucket"), std::string::npos);
}

// ---- TraceRecorder --------------------------------------------------------

TEST(ObsTrace, SpanWhileDisabledIsInert) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.disable();
  const std::uint64_t before = recorder.recorded();
  {
    const Span span("inert", {}, "nothing");
    EXPECT_FALSE(span.handle().valid());
  }
  EXPECT_EQ(recorder.recorded(), before);
}

TEST(ObsTrace, ChromeTraceIsWellFormedJson) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.enable(64);
  {
    const Span parent("outer-op", {}, "detail with \"quotes\" and \\slash");
    EXPECT_TRUE(parent.handle().valid());
    const Span child("inner-op", parent.handle(), "child");
    (void)child;
  }
  recorder.disable();
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string text = out.str();

  JsonScanner scanner(text);
  EXPECT_TRUE(scanner.valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"outer-op\""), std::string::npos);
  EXPECT_NE(text.find("\"inner-op\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"droppedEvents\": 0"), std::string::npos);
  // The child's args carry the parent's id, so the causality chain survives
  // the export.
  EXPECT_NE(text.find("\"parent\": 1"), std::string::npos);
}

TEST(ObsTrace, SetDetailOverridesConstructionDetail) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.enable(16);
  {
    Span span("op", {}, "before");
    span.set_detail("after");
  }
  recorder.disable();
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"detail\": \"after\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"detail\": \"before\""), std::string::npos);
}

TEST(ObsTrace, RingDropsOldestAndKeepsNewest) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.enable(8);
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> details;
  for (int i = 0; i < 20; ++i) {
    details.push_back("event-" + std::to_string(i));
    recorder.record("ring-test", SpanHandle{recorder.new_id()}, {}, now, now,
                    details.back());
  }
  recorder.disable();
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);

  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string text = out.str();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(text.find("\"event-" + std::to_string(i) + "\""),
              std::string::npos)
        << "dropped event " << i << " leaked into the export";
  }
  for (int i = 12; i < 20; ++i) {
    EXPECT_NE(text.find("\"event-" + std::to_string(i) + "\""),
              std::string::npos)
        << "retained event " << i << " missing from the export";
  }
  EXPECT_NE(text.find("\"droppedEvents\": 12"), std::string::npos);
  JsonScanner scanner(text);
  EXPECT_TRUE(scanner.valid()) << text;
}

TEST(ObsTrace, ConcurrentWritersNeverLoseTheirSlotClaim) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.enable(16);  // deliberately smaller than the event count: laps
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 5000;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, now] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        recorder.record("concurrent", SpanHandle{recorder.new_id()}, {}, now,
                        now, "x");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  recorder.disable();
  EXPECT_EQ(recorder.recorded(), kThreads * kEventsPerThread);
  EXPECT_EQ(recorder.dropped(), kThreads * kEventsPerThread - 16u);
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  JsonScanner scanner(out.str());
  EXPECT_TRUE(scanner.valid());
}

// ---- the no-perturbation invariant ----------------------------------------

std::vector<analysis::AnalysisRequest> perturbation_requests() {
  std::vector<analysis::AnalysisRequest> requests;
  for (const char* name : {"c17", "parity8", "rca8"}) {
    const analysis::CompiledCircuit circuit =
        analysis::compile(gen::find_benchmark(name).build());
    {
      analysis::EnergyBoundRequest spec;
      spec.epsilon = 0.01;
      spec.delta = 0.01;
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/bound";
      request.circuit = circuit;
      request.options = spec;
      requests.push_back(std::move(request));
    }
    {
      analysis::ProfileRequest spec;
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/profile";
      request.circuit = circuit;
      request.options = spec;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

std::string run_batch_json(unsigned threads) {
  exec::BatchEvaluator batch(exec::Parallelism{threads});
  for (analysis::AnalysisRequest& request : perturbation_requests()) {
    batch.submit(std::move(request));
  }
  const std::vector<analysis::AnalysisResult> results = batch.run();
  std::ostringstream out;
  exec::write_batch_json(out, results);
  return out.str();
}

// Observability is purely observational: the serialized batch output is
// byte-identical with tracing off, with tracing on, and after the ring has
// wrapped — for serial, dedicated-pool, and global-pool (ENB_THREADS-
// honoring) execution alike.
TEST(ObsDeterminism, TracingDoesNotPerturbBatchOutput) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.disable();
  for (const unsigned threads : {1u, 4u, 0u}) {
    const std::string untraced = run_batch_json(threads);
    recorder.enable(32);  // small ring: wrap handling is on the traced path
    const std::string traced = run_batch_json(threads);
    recorder.disable();
    EXPECT_EQ(untraced, traced) << "threads = " << threads;
    EXPECT_FALSE(untraced.empty());
  }
}

}  // namespace
}  // namespace enb::obs
