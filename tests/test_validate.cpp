#include "netlist/validate.hpp"

#include <gtest/gtest.h>

#include "netlist/dot_io.hpp"

namespace enb::netlist {
namespace {

TEST(Validate, CleanCircuitPasses) {
  Circuit c;
  const NodeId a = c.add_input("a");
  c.add_output(c.add_gate(GateType::kNot, a));
  const ValidationReport report = validate(c);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_NO_THROW(validate_or_throw(c));
}

TEST(Validate, NoOutputsIsError) {
  Circuit c;
  c.add_input("a");
  const ValidationReport report = validate(c);
  EXPECT_FALSE(report.ok());
  EXPECT_THROW(validate_or_throw(c), std::runtime_error);
}

TEST(Validate, EmptyCircuitIsError) {
  const Circuit c;
  EXPECT_FALSE(validate(c).ok());
}

TEST(Validate, DeadGatesWarn) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_gate(GateType::kNot, a);  // dead
  c.add_output(a);
  const ValidationReport report = validate(c);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
}

TEST(Validate, UnusedInputWarns) {
  Circuit c;
  c.add_input("unused");
  const NodeId b = c.add_input("used");
  c.add_output(c.add_gate(GateType::kBuf, b));
  const ValidationReport report = validate(c);
  EXPECT_TRUE(report.ok());
  bool mentioned = false;
  for (const auto& w : report.warnings) {
    mentioned = mentioned || w.find("unused") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(DotIo, EmitsGraphvizStructure) {
  Circuit c("dot");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  c.add_output(c.add_gate(GateType::kNand, a, b), "y");
  const std::string dot = write_dot_string(c);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("NAND"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

}  // namespace
}  // namespace enb::netlist
