#include "core/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::core {
namespace {

TEST(Channel, XiEpsilonRoundTrip) {
  for (double eps : {0.0, 0.1, 0.25, 0.5}) {
    EXPECT_NEAR(epsilon_of_xi(xi_of_epsilon(eps)), eps, 1e-15);
  }
  EXPECT_DOUBLE_EQ(xi_of_epsilon(0.0), 1.0);
  EXPECT_DOUBLE_EQ(xi_of_epsilon(0.5), 0.0);
}

TEST(Channel, ComposeMatchesXiProduct) {
  const double e1 = 0.1;
  const double e2 = 0.2;
  const double composed = compose_epsilon(e1, e2);
  EXPECT_NEAR(xi_of_epsilon(composed),
              xi_of_epsilon(e1) * xi_of_epsilon(e2), 1e-15);
}

TEST(Channel, ComposeIdentityAndAbsorbing) {
  EXPECT_DOUBLE_EQ(compose_epsilon(0.0, 0.3), 0.3);   // clean channel
  EXPECT_DOUBLE_EQ(compose_epsilon(0.5, 0.3), 0.5);   // total scrambler
  EXPECT_DOUBLE_EQ(compose_epsilon(0.5, 0.5), 0.5);
}

TEST(Channel, ComposeNPowers) {
  const double eps = 0.05;
  EXPECT_DOUBLE_EQ(compose_epsilon_n(eps, 0), 0.0);
  EXPECT_DOUBLE_EQ(compose_epsilon_n(eps, 1), eps);
  EXPECT_NEAR(compose_epsilon_n(eps, 2), compose_epsilon(eps, eps), 1e-15);
  EXPECT_NEAR(compose_epsilon_n(eps, 5),
              (1.0 - std::pow(0.9, 5)) / 2.0, 1e-15);
}

TEST(Channel, ComposeMonotoneInCount) {
  double prev = 0.0;
  for (int k = 1; k <= 20; ++k) {
    const double current = compose_epsilon_n(0.02, k);
    EXPECT_GT(current, prev);
    EXPECT_LT(current, 0.5);
    prev = current;
  }
}

TEST(Channel, TransformProbability) {
  const SymmetricChannel clean(0.0);
  EXPECT_DOUBLE_EQ(clean.transform_probability(0.3), 0.3);
  const SymmetricChannel scrambler(0.5);
  EXPECT_DOUBLE_EQ(scrambler.transform_probability(0.9), 0.5);
  const SymmetricChannel ch(0.1);
  EXPECT_NEAR(ch.transform_probability(1.0), 0.9, 1e-15);
  EXPECT_NEAR(ch.transform_probability(0.0), 0.1, 1e-15);
}

TEST(Channel, ThenComposes) {
  const SymmetricChannel a(0.1);
  const SymmetricChannel b(0.2);
  EXPECT_NEAR(a.then(b).epsilon, compose_epsilon(0.1, 0.2), 1e-15);
}

TEST(Channel, Validation) {
  EXPECT_THROW((void)SymmetricChannel(-0.01), std::invalid_argument);
  EXPECT_THROW((void)SymmetricChannel(0.51), std::invalid_argument);
  EXPECT_THROW((void)check_delta(0.5), std::invalid_argument);
  EXPECT_THROW((void)check_delta(-0.1), std::invalid_argument);
  EXPECT_NO_THROW((void)check_delta(0.0));
  EXPECT_THROW((void)compose_epsilon_n(0.1, -1), std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW((void)check_epsilon(nan), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
