#include "netlist/topo.hpp"

#include <gtest/gtest.h>

namespace enb::netlist {
namespace {

Circuit chain_circuit(int length) {
  Circuit c("chain");
  NodeId prev = c.add_input("a");
  for (int i = 0; i < length; ++i) prev = c.add_gate(GateType::kNot, prev);
  c.add_output(prev, "y");
  return c;
}

TEST(Topo, LevelsOfChain) {
  const Circuit c = chain_circuit(5);
  const std::vector<int> level = levels(c);
  EXPECT_EQ(level.front(), 0);
  EXPECT_EQ(level.back(), 5);
  EXPECT_EQ(depth(c), 5);
}

TEST(Topo, LevelsOfTree) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  const NodeId e = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kAnd, d, e);
  const NodeId g3 = c.add_gate(GateType::kAnd, g1, g2);
  c.add_output(g3);
  const std::vector<int> level = levels(c);
  EXPECT_EQ(level[g1], 1);
  EXPECT_EQ(level[g2], 1);
  EXPECT_EQ(level[g3], 2);
  EXPECT_EQ(depth(c), 2);
}

TEST(Topo, DepthOfInputOutput) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(a);
  EXPECT_EQ(depth(c), 0);
}

TEST(Topo, UnbalancedDepthTakesMax) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  NodeId deep = a;
  for (int i = 0; i < 4; ++i) deep = c.add_gate(GateType::kBuf, deep);
  const NodeId g = c.add_gate(GateType::kAnd, deep, b);
  c.add_output(g);
  EXPECT_EQ(depth(c), 5);
}

TEST(Topo, FanoutCounts) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kOr, a, g1);
  c.add_output(g2);
  const std::vector<int> fanout = fanout_counts(c);
  EXPECT_EQ(fanout[a], 2);
  EXPECT_EQ(fanout[b], 1);
  EXPECT_EQ(fanout[g1], 1);
  EXPECT_EQ(fanout[g2], 0);  // output listing is not a fanout edge
}

TEST(Topo, TransitiveFaninMarksCone) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kNot, a);
  const NodeId g2 = c.add_gate(GateType::kNot, b);  // not in g1's cone
  const NodeId g3 = c.add_gate(GateType::kAnd, g1, a);
  c.add_output(g3);
  c.add_output(g2);
  const std::vector<NodeId> roots{g3};
  const std::vector<bool> cone = transitive_fanin(c, roots);
  EXPECT_TRUE(cone[a]);
  EXPECT_TRUE(cone[g1]);
  EXPECT_TRUE(cone[g3]);
  EXPECT_FALSE(cone[b]);
  EXPECT_FALSE(cone[g2]);
}

TEST(Topo, ReachableFromOutputsCoversAllOutputCones) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId dead = c.add_gate(GateType::kNot, a);
  const NodeId live = c.add_gate(GateType::kBuf, a);
  c.add_output(live);
  const std::vector<bool> mark = reachable_from_outputs(c);
  EXPECT_TRUE(mark[a]);
  EXPECT_TRUE(mark[live]);
  EXPECT_FALSE(mark[dead]);
}

TEST(Topo, MajCountsAsSingleLevel) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  const NodeId m = c.add_gate(GateType::kMaj, a, b, d);
  c.add_output(m);
  EXPECT_EQ(depth(c), 1);
}

}  // namespace
}  // namespace enb::netlist
