// Analysis-layer contract tests.
//
// The acceptance bar of the PR 3 redesign:
//   - every handle-based entry point is bit-identical to the circuit-based
//     estimator it fronts (compiled-vs-fresh, all six kinds);
//   - streaming run(ResultSink) delivers payloads bit-identical to the
//     blocking run() for threads in {1, 0 (global pool), 64 (oversubscribed
//     dedicated pool)};
//   - an N-point eps sweep over one CompiledCircuit performs zero
//     netlist::Circuit copies and exactly one profile extraction.
#include "analysis/analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "core/analyzer.hpp"
#include "core/profile.hpp"
#include "exec/batch.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "sim/reliability.hpp"

namespace enb::analysis {
namespace {

CompiledCircuit suite_handle(const std::string& name) {
  return compile(gen::find_benchmark(name).build());
}

// ---- compiled-vs-fresh bit-identity for all six analysis kinds -----------

TEST(Analysis, ReliabilityMatchesFreshCircuitCall) {
  const CompiledCircuit handle = suite_handle("c17");
  sim::ReliabilityOptions options;
  options.trials = 2000;
  options.shard_passes = 4;
  options.seed = 99;
  const sim::ReliabilityResult fresh = sim::estimate_reliability(
      handle.circuit(), 0.03, options, exec::Parallelism::serial());
  const sim::ReliabilityResult compiled =
      estimate_reliability(handle, 0.03, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.delta_hat, fresh.delta_hat);
  EXPECT_EQ(compiled.ci_low, fresh.ci_low);
  EXPECT_EQ(compiled.ci_high, fresh.ci_high);
  EXPECT_EQ(compiled.failures, fresh.failures);
  EXPECT_EQ(compiled.trials, fresh.trials);
  EXPECT_EQ(compiled.requested_trials, fresh.requested_trials);
}

TEST(Analysis, ReliabilityVsGoldenMatchesFreshCircuitCall) {
  const CompiledCircuit golden = compile(gen::ripple_carry_adder(4));
  const CompiledCircuit noisy =
      compile(ft::nmr_transform(golden.circuit()).circuit);
  sim::ReliabilityOptions options;
  options.trials = 2048;
  options.shard_passes = 8;
  const sim::ReliabilityResult fresh = sim::estimate_reliability_vs(
      noisy.circuit(), golden.circuit(), 0.01, options,
      exec::Parallelism::serial());
  const sim::ReliabilityResult compiled = estimate_reliability_vs(
      noisy, golden, 0.01, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.delta_hat, fresh.delta_hat);
  EXPECT_EQ(compiled.failures, fresh.failures);
}

TEST(Analysis, WorstCaseMatchesFreshCircuitCall) {
  const CompiledCircuit handle = suite_handle("c17");
  sim::WorstCaseOptions options;
  options.num_inputs = 24;
  options.trials_per_input = 300;
  const sim::WorstCaseResult fresh = sim::estimate_worst_case_reliability(
      handle.circuit(), handle.circuit(), 0.05, options,
      exec::Parallelism::serial());
  const sim::WorstCaseResult compiled = estimate_worst_case_reliability(
      handle, handle, 0.05, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.worst.delta_hat, fresh.worst.delta_hat);
  EXPECT_EQ(compiled.worst.failures, fresh.worst.failures);
  EXPECT_EQ(compiled.average_delta, fresh.average_delta);
  EXPECT_EQ(compiled.worst_input, fresh.worst_input);
}

TEST(Analysis, ActivityMatchesFreshCircuitCall) {
  const CompiledCircuit handle = suite_handle("rca8");
  sim::ActivityOptions options;
  options.sample_pairs = 256;
  options.shard_pairs = 32;
  const sim::ActivityResult fresh = sim::estimate_activity(
      handle.circuit(), options, exec::Parallelism::serial());
  const sim::ActivityResult compiled =
      estimate_activity(handle, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.avg_gate_toggle_rate, fresh.avg_gate_toggle_rate);
  EXPECT_EQ(compiled.avg_gate_one_probability, fresh.avg_gate_one_probability);
  EXPECT_EQ(compiled.toggle_rate, fresh.toggle_rate);
}

TEST(Analysis, SensitivityMatchesFreshCircuitCall) {
  const CompiledCircuit handle = suite_handle("rca8");
  sim::SensitivityOptions options;
  options.max_exact_inputs = 8;  // rca8 has 17 inputs: sampled sweep
  options.sample_words = 64;
  options.shard_words = 8;
  const sim::SensitivityResult fresh = sim::compute_sensitivity(
      handle.circuit(), options, exec::Parallelism::serial());
  const sim::SensitivityResult compiled =
      compute_sensitivity(handle, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.sensitivity, fresh.sensitivity);
  EXPECT_EQ(compiled.total_influence, fresh.total_influence);
  EXPECT_EQ(compiled.assignments, fresh.assignments);
  EXPECT_EQ(compiled.exact, fresh.exact);
}

TEST(Analysis, ProfileMatchesFreshCircuitCall) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;
  for (const char* name : {"rca8", "parity8"}) {  // sampled and BDD routes
    const CompiledCircuit handle = suite_handle(name);
    const core::CircuitProfile fresh = core::extract_profile(
        handle.circuit(), options, exec::Parallelism::serial());
    const core::CircuitProfile& compiled =
        extract_profile(handle, options, exec::Parallelism::serial());
    EXPECT_EQ(compiled.size_s0, fresh.size_s0) << name;
    EXPECT_EQ(compiled.depth_d0, fresh.depth_d0) << name;
    EXPECT_EQ(compiled.avg_fanin_k, fresh.avg_fanin_k) << name;
    EXPECT_EQ(compiled.avg_activity_sw0, fresh.avg_activity_sw0) << name;
    EXPECT_EQ(compiled.sensitivity_s, fresh.sensitivity_s) << name;
    EXPECT_EQ(compiled.sensitivity_exact, fresh.sensitivity_exact) << name;
  }
}

TEST(Analysis, AnalyzeMatchesCoreAnalyzeOnExtractedProfile) {
  const CompiledCircuit handle = suite_handle("mult4");
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;
  const core::CircuitProfile fresh = core::extract_profile(
      handle.circuit(), options, exec::Parallelism::serial());
  const core::BoundReport direct = core::analyze(fresh, 0.02, 0.05);
  const core::BoundReport compiled =
      analyze(handle, 0.02, 0.05, {}, options, exec::Parallelism::serial());
  EXPECT_EQ(compiled.energy.total_factor, direct.energy.total_factor);
  EXPECT_EQ(compiled.size_factor, direct.size_factor);
  EXPECT_EQ(compiled.metrics.delay, direct.metrics.delay);
  // analyze() populated the handle cache: one extraction total.
  EXPECT_EQ(handle.profile_extractions(), 1u);
}

// ---- evaluate(): the generic typed front door ----------------------------

TEST(Analysis, EvaluateMatchesSpecificEntryPoints) {
  const CompiledCircuit handle = suite_handle("c17");
  AnalysisRequest request;
  request.name = "rel";
  request.circuit = handle;
  ReliabilityRequest spec;
  spec.epsilon = 0.02;
  spec.options.trials = 2048;
  spec.options.shard_passes = 8;
  request.options = spec;

  const AnalysisResult result =
      evaluate(request, exec::Parallelism::serial());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.kind, AnalysisKind::kReliability);
  const sim::ReliabilityResult direct = estimate_reliability(
      handle, spec.epsilon, spec.options, exec::Parallelism::serial());
  ASSERT_NE(result.get<sim::ReliabilityResult>(), nullptr);
  EXPECT_EQ(result.get<sim::ReliabilityResult>()->delta_hat, direct.delta_hat);
  EXPECT_EQ(result.metric("delta_hat"), direct.delta_hat);
}

TEST(Analysis, EvaluateIsolatesErrors) {
  AnalysisRequest request;
  request.name = "bad";
  request.circuit = compile(gen::c17());              // 5 inputs
  request.golden = compile(gen::ripple_carry_adder(4));  // 9 inputs: mismatch
  request.options = ReliabilityRequest{};
  const AnalysisResult result = evaluate(request);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("mismatch"), std::string::npos) << result.error;
  EXPECT_TRUE(result.metrics.empty());
}

// ---- batch: streaming vs blocking, cache sharing, zero copies ------------

// A mixed request set over shared handles: every kind, including golden
// references and two profile consumers on one handle.
std::vector<AnalysisRequest> mixed_requests() {
  std::vector<AnalysisRequest> requests;
  const CompiledCircuit c17 = suite_handle("c17");
  const CompiledCircuit rca8 = suite_handle("rca8");
  const CompiledCircuit parity8 = suite_handle("parity8");
  const CompiledCircuit mult4 = suite_handle("mult4");

  {
    AnalysisRequest r;
    r.name = "c17/rel";
    r.circuit = c17;
    ReliabilityRequest spec;
    spec.epsilon = 0.02;
    spec.options.trials = 2048;
    spec.options.shard_passes = 8;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    AnalysisRequest r;
    r.name = "c17/worst";
    r.circuit = c17;
    WorstCaseRequest spec;
    spec.epsilon = 0.05;
    spec.options.num_inputs = 16;
    spec.options.trials_per_input = 256;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    AnalysisRequest r;
    r.name = "rca8/act";
    r.circuit = rca8;
    ActivityRequest spec;
    spec.options.sample_pairs = 256;
    spec.options.shard_pairs = 32;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    AnalysisRequest r;
    r.name = "rca8/sens";
    r.circuit = rca8;
    SensitivityRequest spec;
    spec.options.max_exact_inputs = 8;
    spec.options.sample_words = 64;
    spec.options.shard_words = 8;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    // Redundant implementation vs its golden reference.
    AnalysisRequest r;
    r.name = "tmr-rca4/rel";
    const CompiledCircuit golden = compile(gen::ripple_carry_adder(4));
    r.circuit = compile(ft::nmr_transform(golden.circuit()).circuit);
    r.golden = golden;
    ReliabilityRequest spec;
    spec.epsilon = 0.01;
    spec.options.trials = 2048;
    spec.options.shard_passes = 8;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  // Two profile consumers (profile + energy-bound) sharing the mult4 handle
  // and key, plus a BDD-route profile on parity8.
  core::ProfileOptions profile_options;
  profile_options.activity_pairs = 256;
  profile_options.sensitivity_exact_max_inputs = 8;
  {
    AnalysisRequest r;
    r.name = "mult4/bound";
    r.circuit = mult4;
    EnergyBoundRequest spec;
    spec.epsilon = 0.01;
    spec.delta = 0.01;
    spec.profile = profile_options;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    AnalysisRequest r;
    r.name = "mult4/profile";
    r.circuit = mult4;
    ProfileRequest spec;
    spec.options = profile_options;
    r.options = spec;
    requests.push_back(std::move(r));
  }
  {
    AnalysisRequest r;
    r.name = "parity8/profile";
    r.circuit = parity8;
    r.options = ProfileRequest{};
    requests.push_back(std::move(r));
  }
  return requests;
}

using MetricsMap =
    std::map<std::string, std::vector<std::pair<std::string, double>>>;

MetricsMap metrics_by_name(const std::vector<AnalysisResult>& results) {
  MetricsMap map;
  for (const AnalysisResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    map.emplace(r.name, r.metrics);
  }
  return map;
}

TEST(AnalysisBatch, StreamingMatchesBlockingForAnyThreadCount) {
  // Reference: blocking run, serial.
  const MetricsMap reference = metrics_by_name(
      exec::evaluate_requests(mixed_requests(), exec::Parallelism::serial()));
  ASSERT_EQ(reference.size(), 8u);

  for (const unsigned threads : {1u, 0u, 64u}) {
    // Blocking.
    const MetricsMap blocking = metrics_by_name(exec::evaluate_requests(
        mixed_requests(), exec::Parallelism{threads}));
    EXPECT_EQ(blocking, reference) << "blocking threads=" << threads;

    // Streaming: collect through the sink (completion order unspecified,
    // indices recover submission order).
    exec::BatchEvaluator batch(exec::Parallelism{threads});
    std::vector<AnalysisRequest> requests = mixed_requests();
    const std::size_t count = requests.size();
    for (AnalysisRequest& r : requests) batch.submit(std::move(r));
    std::vector<AnalysisResult> streamed(count);
    std::vector<bool> seen(count, false);
    batch.run([&](AnalysisResult result) {
      ASSERT_LT(result.index, count);
      EXPECT_FALSE(seen[result.index]) << "duplicate index " << result.index;
      seen[result.index] = true;
      streamed[result.index] = std::move(result);
    });
    EXPECT_EQ(std::count(seen.begin(), seen.end(), false), 0)
        << "streaming threads=" << threads;
    EXPECT_EQ(metrics_by_name(streamed), reference)
        << "streaming threads=" << threads;
  }
}

TEST(AnalysisBatch, EpsSweepSharesOneExtractionAndNeverCopies) {
  // The acceptance criterion: N energy-bound requests over one handle
  // perform zero netlist::Circuit copies and exactly one profile
  // extraction, and every point equals a direct core::analyze on the
  // extracted profile.
  const CompiledCircuit circuit = suite_handle("mult4");
  core::ProfileOptions profile_options;
  profile_options.activity_pairs = 256;
  profile_options.sensitivity_exact_max_inputs = 8;

  const std::vector<double> grid = core::log_grid(1e-3, 0.2, 20);
  exec::BatchEvaluator batch;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    AnalysisRequest request;
    request.name = "eps_" + std::to_string(i);
    request.circuit = circuit;
    EnergyBoundRequest spec;
    spec.epsilon = grid[i];
    spec.delta = 0.01;
    spec.profile = profile_options;
    request.options = spec;
    batch.submit(std::move(request));
  }

  const std::uint64_t copies_before = netlist::Circuit::copies_made();
  const std::vector<AnalysisResult> results = batch.run();
  EXPECT_EQ(netlist::Circuit::copies_made(), copies_before)
      << "the sweep must not clone the netlist";
  EXPECT_EQ(circuit.profile_extractions(), 1u)
      << "the sweep must extract the profile exactly once";

  const core::CircuitProfile& profile = circuit.profile(profile_options);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].name << ": " << results[i].error;
    const core::BoundReport direct = core::analyze(profile, grid[i], 0.01);
    EXPECT_EQ(results[i].metric("total_factor"), direct.energy.total_factor);
    EXPECT_EQ(results[i].metric("size_factor"), direct.size_factor);
    EXPECT_EQ(results[i].metric("delay_factor"), direct.metrics.delay);
    ASSERT_TRUE(results[i].profile.has_value());
    EXPECT_EQ(results[i].profile->avg_activity_sw0, profile.avg_activity_sw0);
  }
}

TEST(AnalysisBatch, TwoProfileConsumersOnOneHandleExtractOnce) {
  const CompiledCircuit circuit = suite_handle("rca8");
  core::ProfileOptions profile_options;
  profile_options.activity_pairs = 256;
  profile_options.sensitivity_exact_max_inputs = 8;

  exec::BatchEvaluator batch;
  {
    AnalysisRequest request;
    request.name = "profile";
    request.circuit = circuit;
    ProfileRequest spec;
    spec.options = profile_options;
    request.options = spec;
    batch.submit(std::move(request));
  }
  {
    AnalysisRequest request;
    request.name = "bound";
    request.circuit = circuit;
    EnergyBoundRequest spec;
    spec.profile = profile_options;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const std::vector<AnalysisResult> results = batch.run();
  ASSERT_EQ(results.size(), 2u);
  for (const AnalysisResult& r : results) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    ASSERT_TRUE(r.profile.has_value()) << r.name;
  }
  EXPECT_EQ(circuit.profile_extractions(), 1u);
  // Both saw the same (bit-identical) profile, equal to a direct serial
  // extraction.
  const core::CircuitProfile direct = core::extract_profile(
      circuit.circuit(), profile_options, exec::Parallelism::serial());
  EXPECT_EQ(results[0].profile->avg_activity_sw0, direct.avg_activity_sw0);
  EXPECT_EQ(results[1].profile->avg_activity_sw0, direct.avg_activity_sw0);
  EXPECT_EQ(results[0].profile->sensitivity_s, direct.sensitivity_s);

  // A second batch over the same handle is pure cache hits.
  exec::BatchEvaluator again;
  AnalysisRequest request;
  request.name = "profile-again";
  request.circuit = circuit;
  ProfileRequest spec;
  spec.options = profile_options;
  request.options = spec;
  again.submit(std::move(request));
  const auto rerun = again.run();
  ASSERT_TRUE(rerun[0].ok) << rerun[0].error;
  EXPECT_EQ(circuit.profile_extractions(), 1u);
  EXPECT_EQ(rerun[0].profile->avg_activity_sw0, direct.avg_activity_sw0);
}

TEST(AnalysisBatch, FailedRequestIsIsolated) {
  exec::BatchEvaluator batch;
  {
    AnalysisRequest request;
    request.name = "bad";
    request.circuit = compile(gen::c17());
    request.golden = compile(gen::ripple_carry_adder(4));  // mismatch
    request.options = ReliabilityRequest{};
    batch.submit(std::move(request));
  }
  {
    AnalysisRequest request;
    request.name = "empty";
    request.circuit = compile(netlist::Circuit("no-gates"));
    request.options = ProfileRequest{};
    batch.submit(std::move(request));
  }
  {
    AnalysisRequest request;
    request.name = "good";
    request.circuit = compile(gen::c17());
    ActivityRequest spec;
    spec.options.sample_pairs = 64;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("mismatch"), std::string::npos);
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok) << results[2].error;
  EXPECT_TRUE(results[2].metric("avg_gate_toggle_rate").has_value());
}

TEST(AnalysisBatch, ThrowingSinkDoesNotCancelTheBatch) {
  // Delivery is isolated like evaluation: a sink that throws on one result
  // must not starve the others. Every request is still evaluated and
  // offered; the first sink exception resurfaces after the queue drains.
  exec::BatchEvaluator batch;
  for (int i = 0; i < 4; ++i) {
    AnalysisRequest request;
    request.name = "act_" + std::to_string(i);
    request.circuit = compile(gen::c17());
    ActivityRequest spec;
    spec.options.sample_pairs = 64;
    request.options = spec;
    batch.submit(std::move(request));
  }
  std::vector<std::size_t> delivered;
  EXPECT_THROW(
      batch.run([&](AnalysisResult result) {
        delivered.push_back(result.index);
        if (delivered.size() == 1) throw std::runtime_error("sink broke");
      }),
      std::runtime_error);
  // All four results were offered despite the first throwing, and the queue
  // drained.
  EXPECT_EQ(delivered.size(), 4u);
  EXPECT_EQ(batch.pending(), 0u);
}

TEST(AnalysisRequestTest, KindTracksVariantAlternative) {
  AnalysisRequest request;
  request.options = ReliabilityRequest{};
  EXPECT_EQ(request.kind(), AnalysisKind::kReliability);
  request.options = EnergyBoundRequest{};
  EXPECT_EQ(request.kind(), AnalysisKind::kEnergyBound);
  request.options = ProfileRequest{};
  EXPECT_EQ(request.kind(), AnalysisKind::kProfile);
}

TEST(AnalysisResultTest, MakeResultFlattensPayload) {
  core::BoundReport report;
  report.epsilon = 0.01;
  report.delta = 0.02;
  report.energy.total_factor = 2.5;
  const AnalysisResult result = make_result("point", report);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.kind, AnalysisKind::kEnergyBound);
  EXPECT_EQ(result.metric("eps"), 0.01);
  EXPECT_EQ(result.metric("total_factor"), 2.5);
  ASSERT_NE(result.get<core::BoundReport>(), nullptr);
}

TEST(AnalysisKindTest, RoundTripsThroughNames) {
  for (const AnalysisKind kind :
       {AnalysisKind::kReliability, AnalysisKind::kWorstCase,
        AnalysisKind::kActivity, AnalysisKind::kSensitivity,
        AnalysisKind::kEnergyBound, AnalysisKind::kProfile}) {
    const auto parsed = parse_analysis_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_analysis_kind("worst_case"), AnalysisKind::kWorstCase);
  EXPECT_FALSE(parse_analysis_kind("bogus").has_value());
}

TEST(AnalysisBatch, ManifestRequestsShareMemoizedHandles) {
  std::istringstream in(
      "p1 kind=profile circuit=mult4 budget=256\n"
      "b1 kind=energy-bound circuit=mult4 eps=0.01 budget=256\n"
      "b2 kind=energy-bound circuit=mult4 eps=0.05 budget=256\n");
  std::map<std::string, CompiledCircuit> handles;
  std::vector<AnalysisRequest> requests = exec::parse_manifest_requests(
      in, [&](const std::string& spec) {
        const auto it = handles.find(spec);
        if (it != handles.end()) return it->second;
        return handles.emplace(spec, suite_handle(spec)).first->second;
      });
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_TRUE(requests[0].circuit.same_handle(requests[1].circuit));
  EXPECT_TRUE(requests[1].circuit.same_handle(requests[2].circuit));

  const CompiledCircuit circuit = requests[0].circuit;
  const auto results = exec::evaluate_requests(std::move(requests));
  for (const AnalysisResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
  }
  // profile + both sweep points share one extraction (same budget => same
  // profile key).
  EXPECT_EQ(circuit.profile_extractions(), 1u);
}

}  // namespace
}  // namespace enb::analysis
