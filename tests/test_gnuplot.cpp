#include "report/gnuplot.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace enb::report {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Gnuplot, WritesDatAndScript) {
  const std::string dir = ::testing::TempDir() + "/enb_gnuplot";
  Series s1("k2", {0.001, 0.01}, {1.1, 1.5});
  Series s2("k3", {0.001, 0.01}, {1.05, 1.3});
  GnuplotOptions options;
  options.title = "fig3";
  options.log_x = true;
  write_gnuplot(dir, "fig3", {s1, s2}, options);

  const std::string dat = slurp(dir + "/fig3.dat");
  EXPECT_NE(dat.find("# x k2 k3"), std::string::npos);
  EXPECT_NE(dat.find("0.001 1.1 1.05"), std::string::npos);

  const std::string gp = slurp(dir + "/fig3.gp");
  EXPECT_NE(gp.find("set logscale x"), std::string::npos);
  EXPECT_NE(gp.find("set output 'fig3.png'"), std::string::npos);
  EXPECT_NE(gp.find("using 1:2"), std::string::npos);
  EXPECT_NE(gp.find("using 1:3"), std::string::npos);
  EXPECT_NE(gp.find("title 'k2'"), std::string::npos);
}

TEST(Gnuplot, NoLogDirectivesByDefault) {
  const std::string dir = ::testing::TempDir() + "/enb_gnuplot2";
  Series s("y", {1.0}, {2.0});
  write_gnuplot(dir, "plain", {s});
  const std::string gp = slurp(dir + "/plain.gp");
  EXPECT_EQ(gp.find("logscale"), std::string::npos);
}

TEST(Gnuplot, RejectsBadInput) {
  const std::string dir = ::testing::TempDir() + "/enb_gnuplot3";
  EXPECT_THROW(write_gnuplot(dir, "x", {}), std::invalid_argument);
  Series a("a", {1.0}, {1.0});
  Series b("b", {1.0, 2.0}, {1.0, 2.0});
  EXPECT_THROW(write_gnuplot(dir, "x", {a, b}), std::invalid_argument);
}

}  // namespace
}  // namespace enb::report
