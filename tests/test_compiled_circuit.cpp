// CompiledCircuit contract tests: cheap shared handles, lazily cached
// derived artifacts (stats, levels, fanouts, profiles, mapped variants),
// exactly-once extraction per profile key, and zero netlist copies.
#include "analysis/compiled_circuit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "core/profile.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "netlist/stats.hpp"
#include "netlist/topo.hpp"
#include "synth/library.hpp"
#include "synth/mapper.hpp"

namespace enb::analysis {
namespace {

TEST(CompiledCircuit, EmptyHandleThrows) {
  CompiledCircuit handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(static_cast<bool>(handle));
  EXPECT_EQ(handle.key(), nullptr);
  EXPECT_THROW((void)handle.circuit(), std::logic_error);
  EXPECT_THROW((void)handle.stats(), std::logic_error);
  EXPECT_THROW((void)handle.profile(), std::logic_error);
}

TEST(CompiledCircuit, CompileMovesWithoutCopying) {
  netlist::Circuit circuit = gen::c17();
  const std::uint64_t copies = netlist::Circuit::copies_made();
  const CompiledCircuit handle = compile(std::move(circuit));
  const CompiledCircuit alias = handle;  // handle copy, not netlist copy
  EXPECT_EQ(netlist::Circuit::copies_made(), copies);
  EXPECT_TRUE(handle.valid());
  EXPECT_TRUE(alias.same_handle(handle));
  EXPECT_EQ(alias.key(), handle.key());
  EXPECT_EQ(handle.name(), "c17");
}

TEST(CompiledCircuit, DerivedArtifactsMatchDirectComputation) {
  const netlist::Circuit reference = gen::ripple_carry_adder(4);
  const CompiledCircuit handle = compile(gen::ripple_carry_adder(4));

  const netlist::CircuitStats direct = netlist::compute_stats(reference);
  const netlist::CircuitStats& cached = handle.stats();
  EXPECT_EQ(cached.num_gates, direct.num_gates);
  EXPECT_EQ(cached.depth, direct.depth);
  EXPECT_EQ(cached.num_inputs, direct.num_inputs);
  EXPECT_EQ(cached.avg_fanin, direct.avg_fanin);

  EXPECT_EQ(handle.levels(), netlist::levels(reference));
  EXPECT_EQ(handle.fanout_counts(), netlist::fanout_counts(reference));
  // Cached: the second call returns the same object.
  EXPECT_EQ(&handle.stats(), &cached);
}

TEST(CompiledCircuit, ProfileMatchesExtractProfileAndCachesPerKey) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;

  const netlist::Circuit reference = gen::ripple_carry_adder(8);
  const CompiledCircuit handle = compile(gen::ripple_carry_adder(8));
  const core::CircuitProfile direct =
      core::extract_profile(reference, options, exec::Parallelism::serial());

  const core::CircuitProfile& cached =
      handle.profile(options, exec::Parallelism::serial());
  EXPECT_EQ(cached.size_s0, direct.size_s0);
  EXPECT_EQ(cached.depth_d0, direct.depth_d0);
  EXPECT_EQ(cached.avg_activity_sw0, direct.avg_activity_sw0);
  EXPECT_EQ(cached.sensitivity_s, direct.sensitivity_s);
  EXPECT_EQ(cached.sensitivity_exact, direct.sensitivity_exact);
  EXPECT_EQ(handle.profile_extractions(), 1u);

  // Same key (even through another alias): no second extraction.
  const CompiledCircuit alias = handle;
  (void)alias.profile(options);
  EXPECT_EQ(handle.profile_extractions(), 1u);
  EXPECT_EQ(&alias.profile(options), &cached);

  // The parallelism knob is not part of the key.
  (void)handle.profile(options, exec::Parallelism::dedicated(4));
  EXPECT_EQ(handle.profile_extractions(), 1u);

  // A different seed is a different key.
  core::ProfileOptions reseeded = options;
  reseeded.seed = options.seed + 99;
  (void)handle.profile(reseeded);
  EXPECT_EQ(handle.profile_extractions(), 2u);
}

TEST(CompiledCircuit, CachedProfilePeeksWithoutComputing) {
  const CompiledCircuit handle = compile(gen::c17());
  core::ProfileOptions options;
  options.activity_pairs = 64;
  EXPECT_FALSE(handle.cached_profile(options).has_value());
  EXPECT_EQ(handle.profile_extractions(), 0u);
  (void)handle.profile(options);
  ASSERT_TRUE(handle.cached_profile(options).has_value());
  EXPECT_EQ(handle.cached_profile(options)->size_s0,
            handle.profile(options).size_s0);
  EXPECT_EQ(handle.profile_extractions(), 1u);
}

TEST(CompiledCircuit, StoreProfileFillsTheCacheAndCounts) {
  const CompiledCircuit handle = compile(gen::c17());
  core::ProfileOptions options;
  options.activity_pairs = 64;
  const core::CircuitProfile computed = core::extract_profile(
      handle.circuit(), options, exec::Parallelism::serial());
  handle.store_profile(options, computed);
  EXPECT_EQ(handle.profile_extractions(), 1u);
  ASSERT_TRUE(handle.cached_profile(options).has_value());
  // profile() now hits the stored entry instead of re-extracting.
  EXPECT_EQ(handle.profile(options).avg_activity_sw0,
            computed.avg_activity_sw0);
  EXPECT_EQ(handle.profile_extractions(), 1u);
}

TEST(CompiledCircuit, ConcurrentProfileCallsExtractOnce) {
  const CompiledCircuit handle = compile(gen::ripple_carry_adder(8));
  core::ProfileOptions options;
  options.activity_pairs = 512;
  options.sensitivity_exact_max_inputs = 8;

  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&handle, options] {
      (void)handle.profile(options, exec::Parallelism::serial());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(handle.profile_extractions(), 1u);
}

TEST(CompiledCircuit, MappedVariantIsCachedAndEquivalent) {
  const CompiledCircuit handle = compile(gen::c17());
  const CompiledCircuit mapped = handle.mapped(3);
  EXPECT_TRUE(mapped.valid());
  EXPECT_FALSE(mapped.same_handle(handle));
  // Second request returns the cached handle.
  EXPECT_TRUE(handle.mapped(3).same_handle(mapped));

  // The mapped netlist matches a direct map_to_library run.
  synth::MapOptions options;
  options.library = synth::Library::generic(3);
  const synth::MapResult direct = synth::map_to_library(handle.circuit(),
                                                        options);
  EXPECT_EQ(mapped.stats().num_gates, direct.after.num_gates);
  EXPECT_EQ(mapped.stats().max_fanin, direct.after.max_fanin);
  EXPECT_LE(mapped.stats().max_fanin, 3);

  // A different fanin budget is a different cache slot.
  const CompiledCircuit mapped2 = handle.mapped(2);
  EXPECT_FALSE(mapped2.same_handle(mapped));
  EXPECT_LE(mapped2.stats().max_fanin, 2);
}

TEST(ProfileKeyTest, ThreadsNeverEntersTheKey) {
  core::ProfileOptions a;
  core::ProfileOptions b;
  b.threads = 64;  // deprecated knob; never value-relevant
  EXPECT_EQ(profile_key(a), profile_key(b));
  b.seed = a.seed + 1;
  EXPECT_FALSE(profile_key(a) == profile_key(b));
}

}  // namespace
}  // namespace enb::analysis
