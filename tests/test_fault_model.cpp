// Fault-universe construction and structural equivalence collapsing.
#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include "gen/iscas.hpp"

namespace enb::fault {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::size_t site_of(NodeId node, StuckAt value) {
  return 2 * static_cast<std::size_t>(node) +
         (value == StuckAt::kOne ? 1 : 0);
}

TEST(FaultUniverse, SiteOrderFollowsNetEnumeration) {
  Circuit c("order");
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, a);
  c.add_output(g);
  const FaultUniverse u = FaultUniverse::build(c, /*collapse=*/false);
  ASSERT_EQ(u.num_sites(), 4u);
  EXPECT_EQ(u.num_nets(), 2u);
  EXPECT_EQ(u.site(0), (FaultSite{a, StuckAt::kZero}));
  EXPECT_EQ(u.site(1), (FaultSite{a, StuckAt::kOne}));
  EXPECT_EQ(u.site(2), (FaultSite{g, StuckAt::kZero}));
  EXPECT_EQ(u.site(3), (FaultSite{g, StuckAt::kOne}));
}

TEST(FaultUniverse, NoCollapseMakesEverySiteItsOwnClass) {
  const FaultUniverse u = FaultUniverse::build(gen::c17(), /*collapse=*/false);
  EXPECT_EQ(u.num_classes(), u.num_sites());
  for (std::size_t s = 0; s < u.num_sites(); ++s) {
    EXPECT_EQ(u.class_of(s), s);
    EXPECT_EQ(u.representative_site(s), s);
  }
}

TEST(FaultUniverse, InverterChainCollapsesToTwoClasses) {
  // a -> NOT -> NOT -> output: both polarities ripple through the chain.
  Circuit c("chain");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_gate(GateType::kNot, a);
  const NodeId d = c.add_gate(GateType::kNot, b);
  c.add_output(d);
  const FaultUniverse u = FaultUniverse::build(c);
  ASSERT_EQ(u.num_sites(), 6u);
  EXPECT_EQ(u.num_classes(), 2u);
  // {a sa0, b sa1, d sa0} with representative a sa0 (lowest site).
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kZero)), 0u);
  EXPECT_EQ(u.class_of(site_of(b, StuckAt::kOne)), 0u);
  EXPECT_EQ(u.class_of(site_of(d, StuckAt::kZero)), 0u);
  EXPECT_EQ(u.representative(0), (FaultSite{a, StuckAt::kZero}));
  // {a sa1, b sa0, d sa1}.
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kOne)), 1u);
  EXPECT_EQ(u.class_of(site_of(b, StuckAt::kZero)), 1u);
  EXPECT_EQ(u.class_of(site_of(d, StuckAt::kOne)), 1u);
  EXPECT_EQ(u.representative(1), (FaultSite{a, StuckAt::kOne}));
}

TEST(FaultUniverse, AndGateMergesControllingInputFaults) {
  Circuit c("and3");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId d = c.add_input("d");
  const NodeId g = c.add_gate(GateType::kAnd, {a, b, d});
  c.add_output(g);
  const FaultUniverse u = FaultUniverse::build(c);
  // {a0, b0, d0, g0} is one class; the four sa1 sites stay singletons.
  EXPECT_EQ(u.num_sites(), 8u);
  EXPECT_EQ(u.num_classes(), 5u);
  const std::size_t cls = u.class_of(site_of(g, StuckAt::kZero));
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kZero)), cls);
  EXPECT_EQ(u.class_of(site_of(b, StuckAt::kZero)), cls);
  EXPECT_EQ(u.class_of(site_of(d, StuckAt::kZero)), cls);
  EXPECT_NE(u.class_of(site_of(a, StuckAt::kOne)),
            u.class_of(site_of(b, StuckAt::kOne)));
}

TEST(FaultUniverse, NandInputStuckZeroEqualsOutputStuckOne) {
  Circuit c("nand2");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g = c.add_gate(GateType::kNand, a, b);
  c.add_output(g);
  const FaultUniverse u = FaultUniverse::build(c);
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kZero)),
            u.class_of(site_of(g, StuckAt::kOne)));
  EXPECT_EQ(u.class_of(site_of(b, StuckAt::kZero)),
            u.class_of(site_of(g, StuckAt::kOne)));
  EXPECT_EQ(u.num_classes(), 4u);  // {a0,b0,g1}, a1, b1, g0
}

TEST(FaultUniverse, FanoutBlocksCollapsing) {
  // a feeds two inverters: a's faults are observable down two paths, so
  // they must not merge into either gate.
  Circuit c("fanout");
  const NodeId a = c.add_input("a");
  const NodeId g1 = c.add_gate(GateType::kNot, a);
  const NodeId g2 = c.add_gate(GateType::kNot, a);
  c.add_output(g1);
  c.add_output(g2);
  const FaultUniverse u = FaultUniverse::build(c);
  EXPECT_EQ(u.num_classes(), u.num_sites());
}

TEST(FaultUniverse, PrimaryOutputFaninBlocksCollapsing) {
  // a is itself observed as an output: forcing a is distinguishable from
  // forcing the inverter's output, single fanout or not.
  Circuit c("po");
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, a);
  c.add_output(a);
  c.add_output(g);
  const FaultUniverse u = FaultUniverse::build(c);
  EXPECT_EQ(u.num_classes(), u.num_sites());
}

TEST(FaultUniverse, SingleFaninAndActsAsBuffer) {
  Circuit c("buf1");
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kAnd, {a});
  c.add_output(g);
  const FaultUniverse u = FaultUniverse::build(c);
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kZero)),
            u.class_of(site_of(g, StuckAt::kZero)));
  EXPECT_EQ(u.class_of(site_of(a, StuckAt::kOne)),
            u.class_of(site_of(g, StuckAt::kOne)));
  EXPECT_EQ(u.num_classes(), 2u);
}

TEST(FaultUniverse, C17CollapsesBelowFullUniverse) {
  const FaultUniverse u = FaultUniverse::build(gen::c17());
  EXPECT_EQ(u.num_sites(), 22u);  // 11 nets x 2
  EXPECT_LT(u.num_classes(), u.num_sites());
  // Representatives are ordered by their lowest member site index.
  for (std::size_t c = 1; c < u.num_classes(); ++c) {
    EXPECT_LT(u.representative_site(c - 1), u.representative_site(c));
  }
  // Every site maps to a class whose representative is <= the site itself.
  for (std::size_t s = 0; s < u.num_sites(); ++s) {
    EXPECT_LE(u.representative_site(u.class_of(s)), s);
  }
}

}  // namespace
}  // namespace enb::fault
