// Property tests for the campaign scale axes: fault dropping must be
// invisible in results, every SIMD lane width must agree with the scalar
// reference, and sampled coverage must be an honest estimate of the
// universe it sampled from.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_sim.hpp"
#include "gen/random_circuit.hpp"
#include "gen/suite.hpp"
#include "sim/logic_sim.hpp"

namespace enb::fault {
namespace {

using netlist::Circuit;

// Everything except sim_passes must be bit-identical with dropping on —
// the pass count is the only thing dropping is allowed to change, and only
// downward.
TEST(FaultScaleProperty, DropMatchesNoDropAcrossSuite) {
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const Circuit circuit = spec.build();
    CampaignOptions options;
    options.patterns = 48;
    options.shard_patterns = 16;
    const FaultCampaignResult no_drop =
        run_campaign(circuit, nullptr, options);
    options.drop = true;
    FaultCampaignResult dropped = run_campaign(circuit, nullptr, options);
    EXPECT_LE(dropped.sim_passes, no_drop.sim_passes) << spec.name;
    dropped.sim_passes = no_drop.sim_passes;
    EXPECT_EQ(dropped, no_drop) << spec.name;
  }
}

// Dropping pays off where it matters: on a kilo-net circuit the faulty
// sweeps shrink by well over the 5x acceptance floor.
TEST(FaultScaleProperty, DropCutsPassesAtLeast5xOnScaleCircuit) {
  const Circuit circuit = gen::find_benchmark("rca256").build();
  CampaignOptions options;
  options.patterns = 128;  // same shape as the pinned benchmark, CI-sized
  options.shard_patterns = 64;
  const FaultCampaignResult no_drop = run_campaign(circuit, nullptr, options);
  options.drop = true;
  const FaultCampaignResult dropped = run_campaign(circuit, nullptr, options);
  EXPECT_GE(no_drop.sim_passes, 5 * dropped.sim_passes);
}

// Every lane width's detection table must equal the scalar reference bit
// for bit — and therefore each other.
TEST(FaultScaleProperty, EveryLaneWidthBitIdenticalToScalar) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen::RandomCircuitOptions circuit_options;
    circuit_options.num_inputs = 10;
    circuit_options.num_gates = 90;
    circuit_options.num_outputs = 6;
    circuit_options.seed = seed;
    const Circuit circuit = gen::random_circuit(circuit_options);
    const FaultUniverse universe = FaultUniverse::build(circuit);
    CampaignOptions options;
    options.patterns = 12;
    options.shard_patterns = 4;
    options.seed = seed * 1337;

    ScalarFaultSim scalar(circuit, universe);
    for (const LaneWidth width : all_lane_widths()) {
      options.lanes = width;
      const DetectionTable table =
          build_detection_table(circuit, circuit, universe, options);
      for (std::size_t p = 0; p < table.patterns.size(); ++p) {
        const std::vector<bool> expected =
            sim::eval_single(circuit, table.patterns[p]);
        for (std::size_t c = 0; c < universe.num_classes(); ++c) {
          const bool lane_bit = ((table.detected[p][c / sim::kWordBits] >>
                                  (c % sim::kWordBits)) &
                                 1) != 0;
          EXPECT_EQ(scalar.detect(c, table.patterns[p], expected), lane_bit)
              << "seed " << seed << " lanes " << to_string(width)
              << " pattern " << p << " class " << c;
        }
      }
    }
  }
}

// Whole-campaign results are lane-width independent (normalized passes
// included) — the property that justifies keeping lanes= out of canonical
// specs and the serve result cache key.
TEST(FaultScaleProperty, CampaignResultIndependentOfLaneWidth) {
  const Circuit circuit = gen::find_benchmark("rca16").build();
  CampaignOptions options;
  options.patterns = 96;
  options.shard_patterns = 32;
  options.drop = true;
  options.sample = 100;
  options.lanes = LaneWidth::k64;
  const FaultCampaignResult baseline = run_campaign(circuit, nullptr, options);
  for (const LaneWidth width : all_lane_widths()) {
    options.lanes = width;
    EXPECT_EQ(run_campaign(circuit, nullptr, options), baseline)
        << to_string(width);
  }
}

// The sample is graded exactly, so the universe's true (exhaustively known,
// full-campaign) coverage must fall inside the sample's Wilson interval for
// a well-behaved seed, and the interval must degenerate to [coverage,
// coverage] when nothing is sampled away.
TEST(FaultScaleProperty, SampledCoverageIntervalContainsTrueCoverage) {
  const Circuit circuit = gen::find_benchmark("rca16").build();
  CampaignOptions options;
  options.patterns = 6;  // deliberately starved: true coverage well below 1
  options.shard_patterns = 2;
  const FaultCampaignResult full = run_campaign(circuit, nullptr, options);
  ASSERT_EQ(full.sampled, full.classes);
  EXPECT_LT(full.coverage, 1.0);
  EXPECT_EQ(full.coverage_ci_low, full.coverage);
  EXPECT_EQ(full.coverage_ci_high, full.coverage);

  options.sample = 64;
  const FaultCampaignResult sampled = run_campaign(circuit, nullptr, options);
  EXPECT_EQ(sampled.sampled, 64u);
  EXPECT_LT(sampled.coverage_ci_low, sampled.coverage_ci_high);
  EXPECT_GE(full.coverage, sampled.coverage_ci_low);
  EXPECT_LE(full.coverage, sampled.coverage_ci_high);
}

// Sample selection is a deterministic, seed-keyed choice of distinct
// classes; unsampled classes stay out of every per-class result field.
TEST(FaultScaleProperty, SampleSelectionIsDeterministicAndSeedKeyed) {
  const Circuit circuit = gen::find_benchmark("rca8").build();
  const FaultUniverse universe = FaultUniverse::build(circuit);
  CampaignOptions options;
  options.sample = 20;
  const std::vector<std::uint32_t> first = sampled_classes(universe, options);
  EXPECT_EQ(first, sampled_classes(universe, options));
  EXPECT_EQ(first.size(), 20u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(std::set<std::uint32_t>(first.begin(), first.end()).size(), 20u);
  options.seed = 0xBEEF;
  EXPECT_NE(first, sampled_classes(universe, options));

  options.seed = 0xFA17;
  const FaultCampaignResult result = run_campaign(circuit, nullptr, options);
  const std::set<std::uint32_t> chosen(first.begin(), first.end());
  for (std::size_t c = 0; c < result.classes; ++c) {
    if (chosen.count(static_cast<std::uint32_t>(c)) != 0) continue;
    EXPECT_EQ(result.detection_counts[c], 0u) << c;
    EXPECT_EQ(result.first_detect_pattern[c], kNotDetected) << c;
    EXPECT_EQ(result.first_detect_output[c], kNoOutput) << c;
  }
}

// The detectability map is internally consistent: detected classes carry a
// valid (pattern, output) pair, undetected classes carry both sentinels,
// and the scalar reference confirms the recorded pattern really is the
// first detector.
TEST(FaultScaleProperty, DetectabilityMapMatchesScalarFirstDetections) {
  const Circuit circuit = gen::find_benchmark("cla16").build();
  const FaultUniverse universe = FaultUniverse::build(circuit);
  CampaignOptions options;
  options.patterns = 16;
  options.shard_patterns = 8;
  const FaultCampaignResult result = run_campaign(circuit, nullptr, options);

  // Re-derive the patterns the campaign drew.
  std::vector<std::vector<bool>> patterns;
  const exec::ShardPlan plan = campaign_shard_plan(circuit, options);
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    for (auto& row :
         shard_pattern_bits(circuit.num_inputs(), options, plan.shard(s))) {
      patterns.push_back(std::move(row));
    }
  }
  ScalarFaultSim scalar(circuit, universe);
  for (std::size_t c = 0; c < result.classes; ++c) {
    std::uint64_t scalar_first = kNotDetected;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      if (scalar.detect(c, patterns[p], sim::eval_single(circuit, patterns[p]))) {
        scalar_first = p;
        break;
      }
    }
    EXPECT_EQ(result.first_detect_pattern[c], scalar_first) << c;
    if (scalar_first == kNotDetected) {
      EXPECT_EQ(result.first_detect_output[c], kNoOutput) << c;
    } else {
      EXPECT_LT(result.first_detect_output[c], circuit.num_outputs()) << c;
    }
  }
}

}  // namespace
}  // namespace enb::fault
