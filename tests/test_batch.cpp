// BatchEvaluator contract tests over the typed analysis::AnalysisRequest
// API (the circuit-by-value BatchJob shims were removed after PR 3; see
// test_analysis.cpp for the handle-sharing coverage).
//
// The acceptance bar: a batch of >= 16 mixed requests (reliability,
// worst-case, activity, sensitivity, energy-bound, profile) produces
// bit-identical per-request results for threads in {1, 0 (global pool), 64
// (oversubscribed dedicated pool)} and for shuffled submission order — and
// every batched result equals the standalone estimator run with the same
// options, because the batch schedules the estimators' own shard-level
// building blocks.
#include "exec/batch.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "core/profile.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "sim/reliability.hpp"

namespace enb::exec {
namespace {

using analysis::AnalysisRequest;
using analysis::AnalysisResult;
using analysis::CompiledCircuit;

netlist::Circuit suite_circuit(const std::string& name) {
  return gen::find_benchmark(name).build();
}

CompiledCircuit compile_suite(const std::string& name) {
  return analysis::compile(suite_circuit(name));
}

AnalysisRequest make_request(std::string name, CompiledCircuit circuit,
                             analysis::RequestOptions options) {
  AnalysisRequest request;
  request.name = std::move(name);
  request.circuit = std::move(circuit);
  request.options = std::move(options);
  return request;
}

// A 20-request mixed workload over small suite circuits, with budgets
// chosen so every kind produces several shards (and both sensitivity sweeps
// — exact and sampled — are exercised). Each call compiles fresh handles,
// so repeated runs start from cold artifact caches.
std::vector<AnalysisRequest> mixed_requests() {
  std::vector<AnalysisRequest> requests;
  const char* circuits[] = {"c17", "parity8", "rca8", "mult4"};
  for (const char* name : circuits) {
    const CompiledCircuit circuit = compile_suite(name);
    {
      analysis::ReliabilityRequest spec;
      spec.epsilon = 0.02;
      spec.options.trials = 2048;
      spec.options.shard_passes = 8;
      requests.push_back(
          make_request(std::string(name) + "/rel", circuit, spec));
    }
    {
      analysis::WorstCaseRequest spec;
      spec.epsilon = 0.05;
      spec.options.num_inputs = 16;
      spec.options.trials_per_input = 256;
      requests.push_back(
          make_request(std::string(name) + "/worst", circuit, spec));
    }
    {
      analysis::ActivityRequest spec;
      spec.options.sample_pairs = 256;
      spec.options.shard_pairs = 32;
      requests.push_back(
          make_request(std::string(name) + "/act", circuit, spec));
    }
    {
      analysis::SensitivityRequest spec;
      spec.options.max_exact_inputs = 8;  // rca8 (17 inputs) samples
      spec.options.sample_words = 64;
      spec.options.shard_words = 8;
      requests.push_back(
          make_request(std::string(name) + "/sens", circuit, spec));
    }
  }
  {
    // Redundant implementation vs its golden reference.
    const CompiledCircuit golden =
        analysis::compile(gen::ripple_carry_adder(4));
    analysis::ReliabilityRequest spec;
    spec.epsilon = 0.01;
    spec.options.trials = 2048;
    spec.options.shard_passes = 8;
    AnalysisRequest request = make_request(
        "tmr-rca4/rel",
        analysis::compile(ft::nmr_transform(golden.circuit()).circuit), spec);
    request.golden = golden;
    requests.push_back(std::move(request));
  }
  {
    analysis::EnergyBoundRequest spec;
    spec.epsilon = 0.01;
    spec.delta = 0.01;
    spec.profile.activity_pairs = 256;
    spec.profile.sensitivity_exact_max_inputs = 8;
    requests.push_back(
        make_request("mult4/bound", compile_suite("mult4"), spec));
  }
  {
    // 17 inputs: Monte-Carlo activity shards + sampled sensitivity shards.
    analysis::ProfileRequest spec;
    spec.options.activity_pairs = 256;
    spec.options.sensitivity_exact_max_inputs = 8;
    requests.push_back(
        make_request("rca8/profile", compile_suite("rca8"), spec));
  }
  {
    // 8 inputs: exact (BDD) activity route + exact sensitivity sweep.
    requests.push_back(make_request("parity8/profile",
                                    compile_suite("parity8"),
                                    analysis::ProfileRequest{}));
  }
  return requests;
}

std::map<std::string, AnalysisResult> by_name(
    std::vector<AnalysisResult> results) {
  std::map<std::string, AnalysisResult> map;
  for (AnalysisResult& r : results) {
    map.emplace(r.name, std::move(r));
  }
  return map;
}

void expect_identical(const std::map<std::string, AnalysisResult>& reference,
                      const std::map<std::string, AnalysisResult>& candidate,
                      const std::string& label) {
  ASSERT_EQ(reference.size(), candidate.size()) << label;
  for (const auto& [name, ref] : reference) {
    const auto it = candidate.find(name);
    ASSERT_NE(it, candidate.end()) << label << ": missing request " << name;
    EXPECT_EQ(ref.ok, it->second.ok) << label << ": " << name;
    // Bit-identical: exact double equality on every metric, no tolerance.
    EXPECT_EQ(ref.metrics, it->second.metrics) << label << ": " << name;
  }
}

TEST(Batch, MixedRequestsBitIdenticalAcrossThreadCountsAndOrder) {
  const auto reference =
      by_name(evaluate_requests(mixed_requests(), Parallelism{1}));
  ASSERT_GE(reference.size(), 16u);
  for (const auto& [name, r] : reference) {
    EXPECT_TRUE(r.ok) << name << ": " << r.error;
  }

  // Global pool and a heavily oversubscribed dedicated pool.
  for (unsigned threads : {0u, 64u}) {
    const auto parallel =
        by_name(evaluate_requests(mixed_requests(), Parallelism{threads}));
    expect_identical(reference, parallel,
                     "threads=" + std::to_string(threads));
  }

  // Shuffled submission order (fixed permutation: stride 7 is coprime with
  // the request count, so it visits every index).
  std::vector<AnalysisRequest> requests = mixed_requests();
  std::vector<AnalysisRequest> shuffled;
  const std::size_t n = requests.size();
  ASSERT_EQ(std::gcd(n, std::size_t{7}), 1u);  // stride must stay coprime
  for (std::size_t i = 0; i < n; ++i) {
    shuffled.push_back(std::move(requests[(i * 7) % n]));
  }
  const auto reordered =
      by_name(evaluate_requests(std::move(shuffled), Parallelism{64}));
  expect_identical(reference, reordered, "shuffled order");
}

TEST(Batch, ReliabilityRequestMatchesDirectEstimatorCall) {
  const CompiledCircuit circuit = compile_suite("c17");
  analysis::ReliabilityRequest spec;
  spec.epsilon = 0.03;
  spec.options.trials = 2000;  // not a multiple of 64 on purpose
  spec.options.shard_passes = 4;
  spec.options.seed = 99;
  const sim::ReliabilityResult direct = sim::estimate_reliability(
      circuit.circuit(), spec.epsilon, spec.options, Parallelism::serial());

  std::vector<AnalysisRequest> requests;
  requests.push_back(make_request("rel", circuit, spec));
  const auto results = evaluate_requests(std::move(requests));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("delta_hat"), direct.delta_hat);
  EXPECT_EQ(results[0].metric("ci_low"), direct.ci_low);
  EXPECT_EQ(results[0].metric("ci_high"), direct.ci_high);
  EXPECT_EQ(results[0].metric("failures"),
            static_cast<double>(direct.failures));
  EXPECT_EQ(results[0].metric("trials"), 2048.0);
  EXPECT_EQ(results[0].metric("requested_trials"), 2000.0);
}

TEST(Batch, WorstCaseRequestMatchesDirectEstimatorCall) {
  const CompiledCircuit circuit = compile_suite("c17");
  analysis::WorstCaseRequest spec;
  spec.epsilon = 0.05;
  spec.options.num_inputs = 24;
  spec.options.trials_per_input = 300;
  const sim::WorstCaseResult direct = sim::estimate_worst_case_reliability(
      circuit.circuit(), circuit.circuit(), spec.epsilon, spec.options,
      Parallelism::serial());

  std::vector<AnalysisRequest> requests;
  requests.push_back(make_request("worst", circuit, spec));
  const auto results = evaluate_requests(std::move(requests));
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("worst_delta_hat"), direct.worst.delta_hat);
  EXPECT_EQ(results[0].metric("worst_failures"),
            static_cast<double>(direct.worst.failures));
  EXPECT_EQ(results[0].metric("average_delta"), direct.average_delta);
  EXPECT_EQ(results[0].metric("trials_per_input"), 320.0);
  EXPECT_EQ(results[0].metric("requested_trials_per_input"), 300.0);
}

TEST(Batch, ProfileRequestMatchesExtractProfile) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;

  for (const char* name : {"rca8", "parity8"}) {  // sampled and BDD routes
    const netlist::Circuit circuit = suite_circuit(name);
    const core::CircuitProfile direct =
        core::extract_profile(circuit, options, Parallelism::serial());

    std::vector<AnalysisRequest> requests;
    requests.push_back(make_request(name, analysis::compile(suite_circuit(name)),
                                    analysis::ProfileRequest{options}));
    const auto results = evaluate_requests(std::move(requests));
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[0].profile.has_value());
    const core::CircuitProfile& p = *results[0].profile;
    EXPECT_EQ(p.num_inputs, direct.num_inputs) << name;
    EXPECT_EQ(p.size_s0, direct.size_s0) << name;
    EXPECT_EQ(p.depth_d0, direct.depth_d0) << name;
    EXPECT_EQ(p.avg_fanin_k, direct.avg_fanin_k) << name;
    EXPECT_EQ(p.avg_activity_sw0, direct.avg_activity_sw0) << name;
    EXPECT_EQ(p.sensitivity_s, direct.sensitivity_s) << name;
    EXPECT_EQ(p.sensitivity_exact, direct.sensitivity_exact) << name;
  }
}

TEST(Batch, EnergyBoundRequestMatchesAnalyze) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;
  const netlist::Circuit circuit = suite_circuit("mult4");
  const core::CircuitProfile profile =
      core::extract_profile(circuit, options, Parallelism::serial());
  const core::BoundReport direct = core::analyze(profile, 0.02, 0.05);

  // Once via extraction, once via the profile-override shortcut (empty
  // circuit handle).
  std::vector<AnalysisRequest> requests;
  {
    analysis::EnergyBoundRequest spec;
    spec.epsilon = 0.02;
    spec.delta = 0.05;
    spec.profile = options;
    requests.push_back(make_request("extracted",
                                    analysis::compile(suite_circuit("mult4")),
                                    spec));
  }
  {
    analysis::EnergyBoundRequest spec;
    spec.epsilon = 0.02;
    spec.delta = 0.05;
    spec.profile_override = profile;
    requests.push_back(make_request("override", CompiledCircuit{}, spec));
  }
  const auto results = evaluate_requests(std::move(requests));
  for (const AnalysisResult& r : results) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(r.metric("total_factor"), direct.energy.total_factor) << r.name;
    EXPECT_EQ(r.metric("size_factor"), direct.size_factor) << r.name;
    EXPECT_EQ(r.metric("delay_factor"), direct.metrics.delay) << r.name;
  }
}

TEST(Batch, FailedRequestIsIsolated) {
  std::vector<AnalysisRequest> requests;
  {
    analysis::ReliabilityRequest spec;
    AnalysisRequest request =
        make_request("bad", analysis::compile(gen::c17()), spec);  // 5 inputs
    request.golden =
        analysis::compile(gen::ripple_carry_adder(4));  // 9 inputs: mismatch
    requests.push_back(std::move(request));
  }
  {
    requests.push_back(make_request(
        "empty", analysis::compile(netlist::Circuit("no-gates")),
        analysis::ProfileRequest{}));  // nothing to profile
  }
  {
    analysis::ActivityRequest spec;
    spec.options.sample_pairs = 64;
    requests.push_back(make_request("good", analysis::compile(gen::c17()),
                                    spec));
  }
  const auto results = evaluate_requests(std::move(requests));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("mismatch"), std::string::npos)
      << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok) << results[2].error;
  EXPECT_TRUE(results[2].metric("avg_gate_toggle_rate").has_value());
}

TEST(Batch, EmptyQueueYieldsEmptyResults) {
  BatchEvaluator evaluator;
  EXPECT_EQ(evaluator.pending(), 0u);
  EXPECT_TRUE(evaluator.run().empty());
}

TEST(Batch, RunClearsTheQueue) {
  BatchEvaluator evaluator;
  analysis::ActivityRequest spec;
  spec.options.sample_pairs = 64;
  evaluator.submit(make_request("act", analysis::compile(gen::c17()), spec));
  EXPECT_EQ(evaluator.pending(), 1u);
  EXPECT_EQ(evaluator.run().size(), 1u);
  EXPECT_EQ(evaluator.pending(), 0u);
  EXPECT_TRUE(evaluator.run().empty());
}

TEST(Batch, JobKindRoundTrips) {
  for (JobKind kind :
       {JobKind::kReliability, JobKind::kWorstCase, JobKind::kActivity,
        JobKind::kSensitivity, JobKind::kEnergyBound, JobKind::kProfile}) {
    const auto parsed = parse_job_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_job_kind("worst_case"), JobKind::kWorstCase);
  EXPECT_EQ(parse_job_kind("energy_bound"), JobKind::kEnergyBound);
  EXPECT_FALSE(parse_job_kind("bogus").has_value());
}

// Memoized handle resolution, like the CLI and the server use.
std::function<CompiledCircuit(const std::string&)> memoized_resolver(
    std::map<std::string, CompiledCircuit>& handles) {
  return [&handles](const std::string& spec) {
    const auto it = handles.find(spec);
    if (it != handles.end()) return it->second;
    return handles.emplace(spec, compile_suite(spec)).first->second;
  };
}

TEST(Manifest, ParsesRequestsWithCommentsAndDefaults) {
  std::istringstream in(
      "# comment line\n"
      "\n"
      "r1 kind=reliability circuit=c17 eps=0.02 budget=4096 seed=5\n"
      "w1 kind=worst-case circuit=parity8 budget=512\n"
      "e1 kind=energy-bound circuit=mult4 delta=0.1 leakage=0.25\n"
      "p1 circuit=rca8 kind=profile\n");
  std::map<std::string, CompiledCircuit> handles;
  const auto requests = parse_manifest_requests(in, memoized_resolver(handles));
  ASSERT_EQ(requests.size(), 4u);
  EXPECT_EQ(requests[0].name, "r1");
  EXPECT_EQ(requests[0].kind(), JobKind::kReliability);
  const auto& rel =
      std::get<analysis::ReliabilityRequest>(requests[0].options);
  EXPECT_DOUBLE_EQ(rel.epsilon, 0.02);
  EXPECT_EQ(rel.options.trials, 4096u);
  EXPECT_EQ(rel.options.seed, 5u);
  EXPECT_EQ(requests[1].kind(), JobKind::kWorstCase);
  EXPECT_EQ(std::get<analysis::WorstCaseRequest>(requests[1].options)
                .options.trials_per_input,
            512u);
  const auto& bound =
      std::get<analysis::EnergyBoundRequest>(requests[2].options);
  EXPECT_DOUBLE_EQ(bound.delta, 0.1);
  EXPECT_DOUBLE_EQ(bound.energy.leakage_fraction, 0.25);
  EXPECT_EQ(requests[3].kind(), JobKind::kProfile);  // key order is free
  EXPECT_GT(requests[3].circuit.circuit().gate_count(), 0u);
}

TEST(Manifest, SharedSpecsShareHandles) {
  std::istringstream in(
      "a kind=activity circuit=c17 budget=64\n"
      "b kind=sensitivity circuit=c17\n"
      "c kind=profile circuit=rca8\n");
  std::map<std::string, CompiledCircuit> handles;
  const auto requests = parse_manifest_requests(in, memoized_resolver(handles));
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_TRUE(requests[0].circuit.same_handle(requests[1].circuit));
  EXPECT_FALSE(requests[0].circuit.same_handle(requests[2].circuit));
}

TEST(Manifest, RejectsMalformedLines) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    std::map<std::string, CompiledCircuit> handles;
    return parse_manifest_requests(in, memoized_resolver(handles));
  };
  EXPECT_THROW((void)parse("j1 kind=bogus circuit=c17"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 circuit=c17"), std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability"), std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 eps=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 budget=12x"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 noequals"),
               std::invalid_argument);
  // std::stoull would wrap "-1" to 2^64-1, whose rounded-up pass count
  // overflows to zero — a silent empty job reporting ok. Reject instead.
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 budget=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 seed=-7"),
               std::invalid_argument);
}

TEST(Batch, ZeroSampledSensitivityBudgetFailsTheRequest) {
  // 17 inputs with max_exact_inputs=8 selects the sampled sweep; a zero
  // sample budget must fail the request, not report ok with NaN influence.
  analysis::SensitivityRequest spec;
  spec.options.max_exact_inputs = 8;
  spec.options.sample_words = 0;
  std::vector<AnalysisRequest> requests;
  requests.push_back(make_request("sens0", compile_suite("rca8"), spec));
  const auto results = evaluate_requests(std::move(requests));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("sample_words"), std::string::npos)
      << results[0].error;
}

TEST(BatchOutput, JsonEmitsNullForNonFiniteMetrics) {
  // delay_factor is legitimately +inf past the Theorem 4 feasibility limit;
  // "inf"/"nan" are not JSON literals and must render as null.
  BatchResult r;
  r.name = "edge";
  r.kind = JobKind::kEnergyBound;
  r.ok = true;
  r.metrics = {{"total_factor", 2.5},
               {"delay_factor", std::numeric_limits<double>::infinity()},
               {"avg_power_factor", std::numeric_limits<double>::quiet_NaN()}};
  std::ostringstream json;
  write_batch_json(json, {r});
  EXPECT_NE(json.str().find("\"total_factor\": 2.5"), std::string::npos);
  EXPECT_NE(json.str().find("\"delay_factor\": null"), std::string::npos);
  EXPECT_NE(json.str().find("\"avg_power_factor\": null"), std::string::npos);
  EXPECT_EQ(json.str().find("inf"), std::string::npos);
  EXPECT_EQ(json.str().find("nan"), std::string::npos);
}

TEST(BatchOutput, ResultJsonObjectMatchesBatchArrayLine) {
  // The per-result writer is the server's framing unit; the array writer
  // must be exactly "[\n  <object>(,\n  <object>)*\n]\n" around it.
  BatchResult r;
  r.name = "one";
  r.kind = JobKind::kActivity;
  r.ok = true;
  r.metrics = {{"avg_gate_toggle_rate", 0.25}};
  std::ostringstream object;
  write_result_json(object, r);
  std::ostringstream array;
  write_batch_json(array, {r});
  EXPECT_EQ(array.str(), "[\n  " + object.str() + "\n]\n");
}

TEST(BatchOutput, CsvAndJsonShapes) {
  std::vector<AnalysisRequest> requests;
  {
    analysis::ActivityRequest spec;
    spec.options.sample_pairs = 64;
    requests.push_back(make_request("act", analysis::compile(gen::c17()),
                                    spec));
  }
  {
    AnalysisRequest request = make_request(
        "bad", analysis::compile(gen::c17()), analysis::ReliabilityRequest{});
    request.golden = analysis::compile(gen::ripple_carry_adder(4));
    requests.push_back(std::move(request));
  }
  const auto results = evaluate_requests(std::move(requests));

  std::ostringstream csv;
  write_batch_csv(csv, results);
  EXPECT_NE(csv.str().find("job,kind,ok,metric,value"), std::string::npos);
  EXPECT_NE(csv.str().find("act,activity,1,avg_gate_toggle_rate,"),
            std::string::npos);
  EXPECT_NE(csv.str().find("bad,reliability,0,error,"), std::string::npos);

  std::ostringstream json;
  write_batch_json(json, results);
  EXPECT_NE(json.str().find("\"name\": \"act\""), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.str().find("mismatch"), std::string::npos);
}

}  // namespace
}  // namespace enb::exec
