// BatchEvaluator contract tests — via the deprecated circuit-by-value
// BatchJob shims, kept as regression coverage until the shims are removed
// (new code uses analysis::AnalysisRequest; see test_analysis.cpp).
//
// The acceptance bar: a batch of >= 16 mixed jobs (reliability, worst-case,
// activity, sensitivity, energy-bound, profile) produces bit-identical
// per-job results for threads in {1, 0 (global pool), 64 (oversubscribed
// dedicated pool)} and for shuffled submission order — and every batched
// result equals the standalone estimator run with the same options, because
// the batch schedules the estimators' own shard-level building blocks.
#include "exec/batch.hpp"

// This file intentionally exercises the deprecated shim API.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "sim/reliability.hpp"

namespace enb::exec {
namespace {

netlist::Circuit suite_circuit(const std::string& name) {
  return gen::find_benchmark(name).build();
}

// A 20-job mixed workload over small suite circuits, with budgets chosen so
// every kind produces several shards (and both sensitivity sweeps — exact
// and sampled — are exercised).
std::vector<BatchJob> mixed_jobs() {
  std::vector<BatchJob> jobs;
  const char* circuits[] = {"c17", "parity8", "rca8", "mult4"};
  for (const char* name : circuits) {
    {
      BatchJob job;
      job.name = std::string(name) + "/rel";
      job.kind = JobKind::kReliability;
      job.circuit = suite_circuit(name);
      job.epsilon = 0.02;
      job.reliability.trials = 2048;
      job.reliability.shard_passes = 8;
      jobs.push_back(std::move(job));
    }
    {
      BatchJob job;
      job.name = std::string(name) + "/worst";
      job.kind = JobKind::kWorstCase;
      job.circuit = suite_circuit(name);
      job.epsilon = 0.05;
      job.worst_case.num_inputs = 16;
      job.worst_case.trials_per_input = 256;
      jobs.push_back(std::move(job));
    }
    {
      BatchJob job;
      job.name = std::string(name) + "/act";
      job.kind = JobKind::kActivity;
      job.circuit = suite_circuit(name);
      job.activity.sample_pairs = 256;
      job.activity.shard_pairs = 32;
      jobs.push_back(std::move(job));
    }
    {
      BatchJob job;
      job.name = std::string(name) + "/sens";
      job.kind = JobKind::kSensitivity;
      job.circuit = suite_circuit(name);
      job.sensitivity.max_exact_inputs = 8;  // rca8 (17 inputs) samples
      job.sensitivity.sample_words = 64;
      job.sensitivity.shard_words = 8;
      jobs.push_back(std::move(job));
    }
  }
  {
    // Redundant implementation vs its golden reference.
    BatchJob job;
    job.name = "tmr-rca4/rel";
    job.kind = JobKind::kReliability;
    job.golden = gen::ripple_carry_adder(4);
    job.circuit = ft::nmr_transform(*job.golden).circuit;
    job.epsilon = 0.01;
    job.reliability.trials = 2048;
    job.reliability.shard_passes = 8;
    jobs.push_back(std::move(job));
  }
  {
    BatchJob job;
    job.name = "mult4/bound";
    job.kind = JobKind::kEnergyBound;
    job.circuit = suite_circuit("mult4");
    job.epsilon = 0.01;
    job.delta = 0.01;
    job.profile.activity_pairs = 256;
    job.profile.sensitivity_exact_max_inputs = 8;
    jobs.push_back(std::move(job));
  }
  {
    // 17 inputs: Monte-Carlo activity shards + sampled sensitivity shards.
    BatchJob job;
    job.name = "rca8/profile";
    job.kind = JobKind::kProfile;
    job.circuit = suite_circuit("rca8");
    job.profile.activity_pairs = 256;
    job.profile.sensitivity_exact_max_inputs = 8;
    jobs.push_back(std::move(job));
  }
  {
    // 8 inputs: exact (BDD) activity route + exact sensitivity sweep.
    BatchJob job;
    job.name = "parity8/profile";
    job.kind = JobKind::kProfile;
    job.circuit = suite_circuit("parity8");
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::map<std::string, BatchResult> by_name(std::vector<BatchResult> results) {
  std::map<std::string, BatchResult> map;
  for (BatchResult& r : results) {
    map.emplace(r.name, std::move(r));
  }
  return map;
}

void expect_identical(const std::map<std::string, BatchResult>& reference,
                      const std::map<std::string, BatchResult>& candidate,
                      const std::string& label) {
  ASSERT_EQ(reference.size(), candidate.size()) << label;
  for (const auto& [name, ref] : reference) {
    const auto it = candidate.find(name);
    ASSERT_NE(it, candidate.end()) << label << ": missing job " << name;
    EXPECT_EQ(ref.ok, it->second.ok) << label << ": " << name;
    // Bit-identical: exact double equality on every metric, no tolerance.
    EXPECT_EQ(ref.metrics, it->second.metrics) << label << ": " << name;
  }
}

TEST(Batch, MixedJobsBitIdenticalAcrossThreadCountsAndOrder) {
  const auto reference = by_name(evaluate_batch(mixed_jobs(),
                                                BatchOptions{1}));
  ASSERT_GE(reference.size(), 16u);
  for (const auto& [name, r] : reference) {
    EXPECT_TRUE(r.ok) << name << ": " << r.error;
  }

  // Global pool and a heavily oversubscribed dedicated pool.
  for (unsigned threads : {0u, 64u}) {
    const auto parallel =
        by_name(evaluate_batch(mixed_jobs(), BatchOptions{threads}));
    expect_identical(reference, parallel,
                     "threads=" + std::to_string(threads));
  }

  // Shuffled submission order (fixed permutation: stride 7 is coprime with
  // the job count, so it visits every index).
  std::vector<BatchJob> jobs = mixed_jobs();
  std::vector<BatchJob> shuffled;
  const std::size_t n = jobs.size();
  ASSERT_EQ(std::gcd(n, std::size_t{7}), 1u);  // stride must stay coprime
  for (std::size_t i = 0; i < n; ++i) {
    shuffled.push_back(std::move(jobs[(i * 7) % n]));
  }
  const auto reordered =
      by_name(evaluate_batch(std::move(shuffled), BatchOptions{64}));
  expect_identical(reference, reordered, "shuffled order");
}

TEST(Batch, ReliabilityJobMatchesDirectEstimatorCall) {
  BatchJob job;
  job.name = "rel";
  job.kind = JobKind::kReliability;
  job.circuit = suite_circuit("c17");
  job.epsilon = 0.03;
  job.reliability.trials = 2000;  // not a multiple of 64 on purpose
  job.reliability.shard_passes = 4;
  job.reliability.seed = 99;
  const sim::ReliabilityResult direct = sim::estimate_reliability(
      job.circuit, job.epsilon, job.reliability, Parallelism::serial());

  std::vector<BatchJob> jobs;
  jobs.push_back(std::move(job));
  const auto results = evaluate_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("delta_hat"), direct.delta_hat);
  EXPECT_EQ(results[0].metric("ci_low"), direct.ci_low);
  EXPECT_EQ(results[0].metric("ci_high"), direct.ci_high);
  EXPECT_EQ(results[0].metric("failures"),
            static_cast<double>(direct.failures));
  EXPECT_EQ(results[0].metric("trials"), 2048.0);
  EXPECT_EQ(results[0].metric("requested_trials"), 2000.0);
}

TEST(Batch, WorstCaseJobMatchesDirectEstimatorCall) {
  BatchJob job;
  job.name = "worst";
  job.kind = JobKind::kWorstCase;
  job.circuit = suite_circuit("c17");
  job.epsilon = 0.05;
  job.worst_case.num_inputs = 24;
  job.worst_case.trials_per_input = 300;
  const sim::WorstCaseResult direct = sim::estimate_worst_case_reliability(
      job.circuit, job.circuit, job.epsilon, job.worst_case,
      Parallelism::serial());

  std::vector<BatchJob> jobs;
  jobs.push_back(std::move(job));
  const auto results = evaluate_batch(std::move(jobs));
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("worst_delta_hat"), direct.worst.delta_hat);
  EXPECT_EQ(results[0].metric("worst_failures"),
            static_cast<double>(direct.worst.failures));
  EXPECT_EQ(results[0].metric("average_delta"), direct.average_delta);
  EXPECT_EQ(results[0].metric("trials_per_input"), 320.0);
  EXPECT_EQ(results[0].metric("requested_trials_per_input"), 300.0);
}

TEST(Batch, ProfileJobMatchesExtractProfile) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;

  for (const char* name : {"rca8", "parity8"}) {  // sampled and BDD routes
    BatchJob job;
    job.name = name;
    job.kind = JobKind::kProfile;
    job.circuit = suite_circuit(name);
    job.profile = options;
    const core::CircuitProfile direct =
        core::extract_profile(job.circuit, options, Parallelism::serial());

    std::vector<BatchJob> jobs;
    jobs.push_back(std::move(job));
    const auto results = evaluate_batch(std::move(jobs));
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[0].profile.has_value());
    const core::CircuitProfile& p = *results[0].profile;
    EXPECT_EQ(p.num_inputs, direct.num_inputs) << name;
    EXPECT_EQ(p.size_s0, direct.size_s0) << name;
    EXPECT_EQ(p.depth_d0, direct.depth_d0) << name;
    EXPECT_EQ(p.avg_fanin_k, direct.avg_fanin_k) << name;
    EXPECT_EQ(p.avg_activity_sw0, direct.avg_activity_sw0) << name;
    EXPECT_EQ(p.sensitivity_s, direct.sensitivity_s) << name;
    EXPECT_EQ(p.sensitivity_exact, direct.sensitivity_exact) << name;
  }
}

TEST(Batch, EnergyBoundJobMatchesAnalyze) {
  core::ProfileOptions options;
  options.activity_pairs = 256;
  options.sensitivity_exact_max_inputs = 8;
  const netlist::Circuit circuit = suite_circuit("mult4");
  const core::CircuitProfile profile =
      core::extract_profile(circuit, options, Parallelism::serial());
  const core::BoundReport direct = core::analyze(profile, 0.02, 0.05);

  // Once via extraction, once via the precomputed-profile shortcut.
  std::vector<BatchJob> jobs;
  {
    BatchJob job;
    job.name = "extracted";
    job.kind = JobKind::kEnergyBound;
    job.circuit = circuit;
    job.epsilon = 0.02;
    job.delta = 0.05;
    job.profile = options;
    jobs.push_back(std::move(job));
  }
  {
    BatchJob job;
    job.name = "precomputed";
    job.kind = JobKind::kEnergyBound;
    job.epsilon = 0.02;
    job.delta = 0.05;
    job.precomputed_profile = profile;
    jobs.push_back(std::move(job));
  }
  const auto results = evaluate_batch(std::move(jobs));
  for (const BatchResult& r : results) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(r.metric("total_factor"), direct.energy.total_factor) << r.name;
    EXPECT_EQ(r.metric("size_factor"), direct.size_factor) << r.name;
    EXPECT_EQ(r.metric("delay_factor"), direct.metrics.delay) << r.name;
  }
}

TEST(Batch, FailedJobIsIsolated) {
  std::vector<BatchJob> jobs;
  {
    BatchJob job;
    job.name = "bad";
    job.kind = JobKind::kReliability;
    job.circuit = gen::c17();                   // 5 inputs
    job.golden = gen::ripple_carry_adder(4);    // 9 inputs: mismatch
    jobs.push_back(std::move(job));
  }
  {
    BatchJob job;
    job.name = "empty";
    job.kind = JobKind::kProfile;
    job.circuit = netlist::Circuit("no-gates");  // nothing to profile
    jobs.push_back(std::move(job));
  }
  {
    BatchJob job;
    job.name = "good";
    job.kind = JobKind::kActivity;
    job.circuit = gen::c17();
    job.activity.sample_pairs = 64;
    jobs.push_back(std::move(job));
  }
  const auto results = evaluate_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("mismatch"), std::string::npos)
      << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok) << results[2].error;
  EXPECT_TRUE(results[2].metric("avg_gate_toggle_rate").has_value());
}

TEST(Batch, EmptyQueueYieldsEmptyResults) {
  BatchEvaluator evaluator;
  EXPECT_EQ(evaluator.pending(), 0u);
  EXPECT_TRUE(evaluator.run().empty());
}

TEST(Batch, RunClearsTheQueue) {
  BatchEvaluator evaluator;
  BatchJob job;
  job.name = "act";
  job.kind = JobKind::kActivity;
  job.circuit = gen::c17();
  job.activity.sample_pairs = 64;
  evaluator.submit(std::move(job));
  EXPECT_EQ(evaluator.pending(), 1u);
  EXPECT_EQ(evaluator.run().size(), 1u);
  EXPECT_EQ(evaluator.pending(), 0u);
  EXPECT_TRUE(evaluator.run().empty());
}

TEST(Batch, JobKindRoundTrips) {
  for (JobKind kind :
       {JobKind::kReliability, JobKind::kWorstCase, JobKind::kActivity,
        JobKind::kSensitivity, JobKind::kEnergyBound, JobKind::kProfile}) {
    const auto parsed = parse_job_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_job_kind("worst_case"), JobKind::kWorstCase);
  EXPECT_EQ(parse_job_kind("energy_bound"), JobKind::kEnergyBound);
  EXPECT_FALSE(parse_job_kind("bogus").has_value());
}

TEST(Manifest, ParsesJobsWithCommentsAndDefaults) {
  std::istringstream in(
      "# comment line\n"
      "\n"
      "r1 kind=reliability circuit=c17 eps=0.02 budget=4096 seed=5\n"
      "w1 kind=worst-case circuit=parity8 budget=512\n"
      "e1 kind=energy-bound circuit=mult4 delta=0.1 leakage=0.25\n"
      "p1 circuit=rca8 kind=profile\n");
  const auto jobs = parse_manifest(in, suite_circuit);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].name, "r1");
  EXPECT_EQ(jobs[0].kind, JobKind::kReliability);
  EXPECT_DOUBLE_EQ(jobs[0].epsilon, 0.02);
  EXPECT_EQ(jobs[0].reliability.trials, 4096u);
  EXPECT_EQ(jobs[0].reliability.seed, 5u);
  EXPECT_EQ(jobs[1].kind, JobKind::kWorstCase);
  EXPECT_EQ(jobs[1].worst_case.trials_per_input, 512u);
  EXPECT_DOUBLE_EQ(jobs[2].delta, 0.1);
  EXPECT_DOUBLE_EQ(jobs[2].energy.leakage_fraction, 0.25);
  EXPECT_EQ(jobs[3].kind, JobKind::kProfile);  // key order is free
  EXPECT_GT(jobs[3].circuit.gate_count(), 0u);
}

TEST(Manifest, RejectsMalformedLines) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_manifest(in, suite_circuit);
  };
  EXPECT_THROW((void)parse("j1 kind=bogus circuit=c17"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 circuit=c17"), std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability"), std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 eps=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 budget=12x"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 noequals"),
               std::invalid_argument);
  // std::stoull would wrap "-1" to 2^64-1, whose rounded-up pass count
  // overflows to zero — a silent empty job reporting ok. Reject instead.
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 budget=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("j1 kind=reliability circuit=c17 seed=-7"),
               std::invalid_argument);
}

TEST(Batch, ZeroSampledSensitivityBudgetFailsTheJob) {
  // 17 inputs with max_exact_inputs=8 selects the sampled sweep; a zero
  // sample budget must fail the job, not report ok with NaN influence.
  BatchJob job;
  job.name = "sens0";
  job.kind = JobKind::kSensitivity;
  job.circuit = suite_circuit("rca8");
  job.sensitivity.max_exact_inputs = 8;
  job.sensitivity.sample_words = 0;
  std::vector<BatchJob> jobs;
  jobs.push_back(std::move(job));
  const auto results = evaluate_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("sample_words"), std::string::npos)
      << results[0].error;
}

TEST(BatchOutput, JsonEmitsNullForNonFiniteMetrics) {
  // delay_factor is legitimately +inf past the Theorem 4 feasibility limit;
  // "inf"/"nan" are not JSON literals and must render as null.
  BatchResult r;
  r.name = "edge";
  r.kind = JobKind::kEnergyBound;
  r.ok = true;
  r.metrics = {{"total_factor", 2.5},
               {"delay_factor", std::numeric_limits<double>::infinity()},
               {"avg_power_factor", std::numeric_limits<double>::quiet_NaN()}};
  std::ostringstream json;
  write_batch_json(json, {r});
  EXPECT_NE(json.str().find("\"total_factor\": 2.5"), std::string::npos);
  EXPECT_NE(json.str().find("\"delay_factor\": null"), std::string::npos);
  EXPECT_NE(json.str().find("\"avg_power_factor\": null"), std::string::npos);
  EXPECT_EQ(json.str().find("inf"), std::string::npos);
  EXPECT_EQ(json.str().find("nan"), std::string::npos);
}

TEST(BatchOutput, CsvAndJsonShapes) {
  std::vector<BatchJob> jobs;
  {
    BatchJob job;
    job.name = "act";
    job.kind = JobKind::kActivity;
    job.circuit = gen::c17();
    job.activity.sample_pairs = 64;
    jobs.push_back(std::move(job));
  }
  {
    BatchJob job;
    job.name = "bad";
    job.kind = JobKind::kReliability;
    job.circuit = gen::c17();
    job.golden = gen::ripple_carry_adder(4);
    jobs.push_back(std::move(job));
  }
  const auto results = evaluate_batch(std::move(jobs));

  std::ostringstream csv;
  write_batch_csv(csv, results);
  EXPECT_NE(csv.str().find("job,kind,ok,metric,value"), std::string::npos);
  EXPECT_NE(csv.str().find("act,activity,1,avg_gate_toggle_rate,"),
            std::string::npos);
  EXPECT_NE(csv.str().find("bad,reliability,0,error,"), std::string::npos);

  std::ostringstream json;
  write_batch_json(json, results);
  EXPECT_NE(json.str().find("\"name\": \"act\""), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.str().find("mismatch"), std::string::npos);
}

}  // namespace
}  // namespace enb::exec
