#include "core/refine.hpp"

#include <gtest/gtest.h>

#include "core/size_bound.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/parity.hpp"

namespace enb::core {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(Refine, SingleOutputMatchesWholeBound) {
  // For a single-output circuit the refinement degenerates to Corollary 1.
  const Circuit c = gen::parity_tree(8, 2);
  const RefinedReport r = refine_size_bound(c, 0.01, 0.01);
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_NEAR(r.refined_redundancy, r.whole_redundancy, 1e-9);
  EXPECT_FALSE(r.refinement_helps());
}

TEST(Refine, PerOutputConesProfiled) {
  const Circuit c = gen::c17();
  const RefinedReport r = refine_size_bound(c, 0.01, 0.01);
  ASSERT_EQ(r.outputs.size(), 2u);
  for (const auto& ob : r.outputs) {
    EXPECT_GT(ob.cone_profile.size_s0, 0.0);
    EXPECT_LE(ob.cone_profile.size_s0, 6.0);  // cone within the circuit
    EXPECT_GE(ob.redundancy_gates, 0.0);
  }
}

TEST(Refine, RefinementCanBeatGlobalBound) {
  // A circuit pairing a high-sensitivity parity output with a one-gate
  // "blanket" output: the global (any-output) sensitivity is dominated by
  // parity, but with an OR-dominated second output the *measured* global
  // sensitivity equals parity's, so whole == refined. To force a gap, use a
  // multi-output circuit where the characteristic-function sensitivity is
  // *smaller* than one cone's sensitivity is impossible (it is a max);
  // instead the refinement helps through the cone's higher per-gate quality:
  // same sensitivity but smaller fanin k in the cone.
  Circuit c("mixed");
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(c.add_input());
  // Output 1: 6-input parity tree (2-input XORs).
  NodeId acc = ins[0];
  for (int i = 1; i < 6; ++i) acc = c.add_gate(GateType::kXor, acc, ins[i]);
  c.add_output(acc, "parity");
  // Output 2: one wide OR (fanin 6) — inflates the global average fanin.
  c.add_output(c.add_gate(GateType::kOr, ins), "any");

  const RefinedReport r = refine_size_bound(c, 0.01, 0.01);
  ASSERT_EQ(r.outputs.size(), 2u);
  // The parity cone has k = 2 < global k̄, so its floor exceeds the global
  // formula's (Theorem 2 is anti-monotone in k at small eps).
  EXPECT_TRUE(r.refinement_helps());
  EXPECT_GT(r.refined_redundancy, r.whole_redundancy);
}

TEST(Refine, ConstantOutputsSkipped) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kNot, a), "real");
  c.add_output(c.add_const(true), "stuck");
  const RefinedReport r = refine_size_bound(c, 0.05, 0.01);
  EXPECT_EQ(r.outputs.size(), 1u);
}

TEST(Refine, RefinedIsMaxOverOutputs) {
  const Circuit c = gen::ripple_carry_adder(3);
  const RefinedReport r = refine_size_bound(c, 0.02, 0.01);
  double max_floor = 0.0;
  for (const auto& ob : r.outputs) {
    max_floor = std::max(max_floor, ob.redundancy_gates);
  }
  EXPECT_DOUBLE_EQ(r.refined_redundancy, max_floor);
}

TEST(Refine, AdderMsbConeCarriesTheBound) {
  // In a ripple-carry adder the cout cone spans every input; its floor must
  // dominate the low-order sum cones.
  const Circuit c = gen::ripple_carry_adder(4);
  const RefinedReport r = refine_size_bound(c, 0.02, 0.01);
  double cout_floor = -1.0;
  double sum0_floor = -1.0;
  for (const auto& ob : r.outputs) {
    if (ob.output_name == "cout") cout_floor = ob.redundancy_gates;
    if (ob.output_name == "sum0") sum0_floor = ob.redundancy_gates;
  }
  ASSERT_GE(cout_floor, 0.0);
  ASSERT_GE(sum0_floor, 0.0);
  EXPECT_GT(cout_floor, sum0_floor);
}

}  // namespace
}  // namespace enb::core
