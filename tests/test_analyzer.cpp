#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/activity_model.hpp"
#include "core/leakage_model.hpp"
#include "core/size_bound.hpp"
#include "gen/iscas.hpp"

namespace enb::core {
namespace {

CircuitProfile paper_parity_profile() {
  // Figure 3's instance: 10-input parity, s = 10, S0 = 21, delta = 0.01.
  return make_profile("parity10_shannon", 10, 21, 0.5, 2, 10);
}

TEST(Analyzer, ReportFieldsConsistent) {
  const BoundReport r = analyze(paper_parity_profile(), 0.01, 0.01);
  EXPECT_EQ(r.name, "parity10_shannon");
  EXPECT_NEAR(r.sw_noisy, noisy_activity(0.5, 0.01), 1e-12);
  EXPECT_NEAR(r.redundancy_gates, redundancy_lower_bound(10, 2, 0.01, 0.01),
              1e-12);
  EXPECT_NEAR(r.size_factor, 1 + r.redundancy_gates / 21.0, 1e-12);
  EXPECT_NEAR(r.leakage_ratio, leakage_ratio(0.5, 0.01), 1e-12);
  EXPECT_TRUE(r.depth_feasible);
  EXPECT_NEAR(r.metrics.edp, r.metrics.energy * r.metrics.delay, 1e-12);
}

TEST(Analyzer, InfeasiblePointReported) {
  const BoundReport r = analyze(paper_parity_profile(), 0.2, 0.01);
  EXPECT_FALSE(r.depth_feasible);
  EXPECT_TRUE(std::isinf(r.metrics.delay));
  EXPECT_TRUE(std::isinf(r.depth_bound));
  // Energy bound remains finite: Theorem 2 holds beyond the depth edge.
  EXPECT_TRUE(std::isfinite(r.energy.total_factor));
}

TEST(Analyzer, WorksOnExtractedProfile) {
  const CircuitProfile p = extract_profile(gen::c17());
  const BoundReport r = analyze(p, 0.01, 0.01);
  EXPECT_GT(r.energy.total_factor, 1.0);
  EXPECT_GT(r.metrics.delay, 1.0);
  EXPECT_LT(r.metrics.delay, 2.0);
}

TEST(Analyzer, SweepMatchesPointEvaluation) {
  const CircuitProfile p = paper_parity_profile();
  const std::vector<double> eps{0.001, 0.01, 0.1};
  const auto sweep = sweep_epsilon(p, eps, 0.01);
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const BoundReport point = analyze(p, eps[i], 0.01);
    EXPECT_DOUBLE_EQ(sweep[i].energy.total_factor, point.energy.total_factor);
    EXPECT_DOUBLE_EQ(sweep[i].epsilon, eps[i]);
  }
}

TEST(Analyzer, LogGridProperties) {
  const auto grid = log_grid(0.001, 0.1, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.001);
  EXPECT_DOUBLE_EQ(grid.back(), 0.1);
  // Log-uniform: constant ratio between consecutive points.
  const double ratio = grid[1] / grid[0];
  for (std::size_t i = 2; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] / grid[i - 1], ratio, 1e-9);
  }
  EXPECT_THROW((void)log_grid(0.0, 0.1, 5), std::invalid_argument);
}

TEST(Analyzer, LinearGridProperties) {
  const auto grid = linear_grid(0.0, 1.0, 11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid[5], 0.5);
  EXPECT_THROW((void)linear_grid(1.0, 0.0, 5), std::invalid_argument);
}

TEST(Analyzer, DeltaTightensBound) {
  // Smaller delta (more reliability) demands more redundancy.
  const CircuitProfile p = paper_parity_profile();
  const BoundReport strict = analyze(p, 0.05, 0.001);
  const BoundReport loose = analyze(p, 0.05, 0.1);
  EXPECT_GT(strict.redundancy_gates, loose.redundancy_gates);
}

TEST(Analyzer, CoupledLeakageAtInfeasiblePointStaysFinite) {
  // With couple_leakage_to_delay set, an infeasible depth point must not
  // poison the energy bound with an infinite delay factor: the analyzer
  // clamps the coupling to 1 (the uncoupled model) when delay diverges.
  EnergyModelOptions options;
  options.couple_leakage_to_delay = true;
  const CircuitProfile p = paper_parity_profile();
  const BoundReport r = analyze(p, 0.2, 0.01, options);  // infeasible at k=2
  EXPECT_FALSE(r.depth_feasible);
  EXPECT_TRUE(std::isfinite(r.energy.total_factor));
  EXPECT_GE(r.energy.total_factor, 1.0);
}

TEST(Analyzer, CoupledLeakageExceedsStaticNearEdge) {
  EnergyModelOptions coupled;
  coupled.couple_leakage_to_delay = true;
  const CircuitProfile p = paper_parity_profile();
  const double eps = 0.13;  // near the k=2 feasibility edge
  const double with_coupling =
      analyze(p, eps, 0.01, coupled).energy.total_factor;
  const double without = analyze(p, eps, 0.01).energy.total_factor;
  EXPECT_GT(with_coupling, without);
}

TEST(Analyzer, DomainChecks) {
  const CircuitProfile p = paper_parity_profile();
  EXPECT_THROW((void)analyze(p, 0.6, 0.01), std::invalid_argument);
  EXPECT_THROW((void)analyze(p, 0.01, 0.7), std::invalid_argument);
  CircuitProfile empty;
  empty.size_s0 = 0;
  EXPECT_THROW((void)analyze(empty, 0.01, 0.01), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
