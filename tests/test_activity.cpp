#include "sim/activity.hpp"

#include <gtest/gtest.h>

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit and2() {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  return c;
}

TEST(Activity, ExactAnd2) {
  const Circuit c = and2();
  const ActivityResult r = exact_activity(c);
  const NodeId gate = c.outputs()[0];
  EXPECT_NEAR(r.one_probability[gate], 0.25, 1e-12);
  EXPECT_NEAR(r.toggle_rate[gate], 2 * 0.25 * 0.75, 1e-12);
  EXPECT_NEAR(r.avg_gate_toggle_rate, 0.375, 1e-12);
}

TEST(Activity, ExactXorIsBalanced) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kXor, a, b));
  const ActivityResult r = exact_activity(c);
  EXPECT_NEAR(r.one_probability[c.outputs()[0]], 0.5, 1e-12);
  EXPECT_NEAR(r.toggle_rate[c.outputs()[0]], 0.5, 1e-12);
}

TEST(Activity, MonteCarloMatchesExact) {
  const Circuit c = and2();
  const ActivityResult exact = exact_activity(c);
  ActivityOptions options;
  options.sample_pairs = 1 << 12;
  options.seed = 5;
  const ActivityResult mc = estimate_activity(c, options);
  const NodeId gate = c.outputs()[0];
  EXPECT_NEAR(mc.one_probability[gate], exact.one_probability[gate], 0.01);
  EXPECT_NEAR(mc.toggle_rate[gate], exact.toggle_rate[gate], 0.01);
}

TEST(Activity, MonteCarloDeterministicPerSeed) {
  const Circuit c = and2();
  ActivityOptions options;
  options.sample_pairs = 128;
  options.seed = 99;
  const ActivityResult r1 = estimate_activity(c, options);
  const ActivityResult r2 = estimate_activity(c, options);
  EXPECT_EQ(r1.toggle_rate, r2.toggle_rate);
}

TEST(Activity, BiasedInputsShiftProbability) {
  const Circuit c = and2();
  ActivityOptions options;
  options.sample_pairs = 1 << 12;
  options.input_one_probability = 0.9;
  const ActivityResult r = estimate_activity(c, options);
  EXPECT_NEAR(r.one_probability[c.outputs()[0]], 0.81, 0.02);
}

TEST(Activity, InputNodesHaveHalfActivity) {
  const Circuit c = and2();
  const ActivityResult r = exact_activity(c);
  for (NodeId in : c.inputs()) {
    EXPECT_NEAR(r.one_probability[in], 0.5, 1e-12);
    EXPECT_NEAR(r.toggle_rate[in], 0.5, 1e-12);
  }
}

TEST(Activity, AverageExcludesInputsAndConstants) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId k = c.add_const(true);
  c.add_output(c.add_gate(GateType::kAnd, a, k));
  const ActivityResult r = exact_activity(c);
  // Only the AND gate contributes; AND(a, 1) == a, so p = 0.5.
  EXPECT_NEAR(r.avg_gate_one_probability, 0.5, 1e-12);
}

TEST(Activity, IdentityFromProbability) {
  EXPECT_DOUBLE_EQ(activity_from_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(activity_from_probability(1.0), 0.0);
  EXPECT_DOUBLE_EQ(activity_from_probability(0.5), 0.5);
  EXPECT_DOUBLE_EQ(activity_from_probability(0.25), 0.375);
}

TEST(Activity, ZeroSamplePairsRejected) {
  ActivityOptions options;
  options.sample_pairs = 0;
  EXPECT_THROW((void)estimate_activity(and2(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::sim
