#include "seq/unroll.hpp"

#include <gtest/gtest.h>

#include "seq/seq_gen.hpp"
#include "sim/logic_sim.hpp"

namespace enb::seq {
namespace {

using netlist::GateType;
using netlist::NodeId;

SeqCircuit toggle_flipflop(bool init) {
  SeqCircuit seq("toggle");
  auto& c = seq.core();
  const NodeId q = c.add_input("q");
  const NodeId nq = c.add_gate(GateType::kNot, q);
  c.add_output(q, "out");
  seq.add_latch(q, nq, init, "q");
  return seq;
}

TEST(Unroll, ToggleAlternates) {
  const SeqCircuit seq = toggle_flipflop(false);
  UnrollOptions options;
  options.frames = 5;
  const netlist::Circuit u = unroll(seq, options);
  EXPECT_EQ(u.num_inputs(), 0u);  // no free inputs
  EXPECT_EQ(u.num_outputs(), 5u);
  const auto out = sim::eval_single(u, {});
  // Initial state 0: outputs 0,1,0,1,0.
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_TRUE(out[3]);
  EXPECT_FALSE(out[4]);
}

TEST(Unroll, InitialValueRespected) {
  const netlist::Circuit u = unroll(toggle_flipflop(true), {});
  const auto out = sim::eval_single(u, {});
  EXPECT_TRUE(out[0]);
}

TEST(Unroll, LastFrameOnlyOutputs) {
  UnrollOptions options;
  options.frames = 4;
  options.outputs_every_frame = false;
  const netlist::Circuit u = unroll(toggle_flipflop(false), options);
  EXPECT_EQ(u.num_outputs(), 1u);
  const auto out = sim::eval_single(u, {});
  EXPECT_TRUE(out[0]);  // cycle 3 output = state after 3 toggles = 1
}

TEST(Unroll, ExposeFinalState) {
  UnrollOptions options;
  options.frames = 2;
  options.outputs_every_frame = false;
  options.expose_final_state = true;
  const netlist::Circuit u = unroll(toggle_flipflop(false), options);
  EXPECT_EQ(u.num_outputs(), 2u);  // out@1 and q@final
  const auto out = sim::eval_single(u, {});
  EXPECT_TRUE(out[0]);   // output at cycle 1 (state after one toggle)
  EXPECT_FALSE(out[1]);  // state after two toggles is back to 0
}

TEST(Unroll, CounterCountsInputFreeFrames) {
  const SeqCircuit seq = counter(3);
  UnrollOptions options;
  options.frames = 5;
  options.outputs_every_frame = false;
  const netlist::Circuit u = unroll(seq, options);
  // Free input "en" per frame.
  EXPECT_EQ(u.num_inputs(), 5u);
  // Enable every cycle: after 4 completed cycles the visible count (state
  // at the start of frame 4) is 4 = 0b100.
  const std::vector<bool> enables(5, true);
  const auto out = sim::eval_single(u, enables);
  // Outputs at frame 4: count0..2 then carry_out.
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_TRUE(out[2]);
}

TEST(Unroll, FrameInputOrderIsFrameMajor) {
  const SeqCircuit seq = shift_register(2);
  UnrollOptions options;
  options.frames = 3;
  const netlist::Circuit u = unroll(seq, options);
  ASSERT_EQ(u.num_inputs(), 3u);
  EXPECT_EQ(u.node_name(u.inputs()[0]), "d@0");
  EXPECT_EQ(u.node_name(u.inputs()[2]), "d@2");
}

TEST(Unroll, ShiftRegisterDelaysSerialInput) {
  const SeqCircuit seq = shift_register(2);
  UnrollOptions options;
  options.frames = 4;
  const netlist::Circuit u = unroll(seq, options);
  // Feed 1,0,0,0; output (stage 1) sees the 1 at the start of frame 3
  // (captured into stage0 after frame 0, stage1 after frame 1... stage1
  // value is visible as the state at frame 2's start? trace: out@t = q1 at
  // start of t; q1 after two captures of the pulse -> out@2... we assert
  // via simulation below rather than reasoning twice).
  const std::vector<bool> in{true, false, false, false};
  const auto out = sim::eval_single(u, in);
  int ones = 0;
  int when = -1;
  for (std::size_t t = 0; t < out.size(); ++t) {
    if (out[t]) {
      ++ones;
      when = static_cast<int>(t);
    }
  }
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(when, 2);  // two-stage delay
}

TEST(Unroll, InitialStateAsInputs) {
  // The unrolled transition function of the toggle FF for 2 frames:
  // out@0 = q_init, out@1 = !q_init.
  UnrollOptions options;
  options.frames = 2;
  options.initial_state_as_inputs = true;
  const netlist::Circuit u = unroll(toggle_flipflop(false), options);
  EXPECT_EQ(u.num_inputs(), 1u);
  EXPECT_EQ(u.node_name(u.inputs()[0]), "q@init");
  auto out = sim::eval_single(u, {false});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
  out = sim::eval_single(u, {true});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Unroll, AutonomousMachineTransitionFunctionIsNonConstant) {
  // lfsr unrolled with fixed initial state is a constant function; with the
  // state as inputs it is a permutation of the state space (non-constant).
  UnrollOptions options;
  options.frames = 1;
  options.outputs_every_frame = false;
  options.expose_final_state = true;
  options.initial_state_as_inputs = true;
  const netlist::Circuit u = unroll(lfsr_maximal(4), options);
  EXPECT_EQ(u.num_inputs(), 4u);
  // Two different states map to two different next states.
  const auto a = sim::eval_single(u, {true, false, false, false});
  const auto b = sim::eval_single(u, {false, true, false, false});
  EXPECT_NE(a, b);
}

TEST(Unroll, RejectsBadFrameCount) {
  UnrollOptions options;
  options.frames = 0;
  EXPECT_THROW((void)unroll(toggle_flipflop(false), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::seq
