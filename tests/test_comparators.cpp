#include "gen/comparators.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

using netlist::Circuit;

std::vector<bool> run_cmp(const Circuit& c, int bits, std::uint64_t a,
                          std::uint64_t b) {
  std::vector<bool> in;
  for (int i = 0; i < bits; ++i) in.push_back(((a >> i) & 1U) != 0);
  for (int i = 0; i < bits; ++i) in.push_back(((b >> i) & 1U) != 0);
  return sim::eval_single(c, in);
}

TEST(EqualityComparator, FourBitExhaustive) {
  const Circuit c = equality_comparator(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(run_cmp(c, 4, a, b)[0], a == b) << a << " vs " << b;
    }
  }
}

TEST(MagnitudeComparator, FourBitExhaustive) {
  const Circuit c = magnitude_comparator(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const auto out = run_cmp(c, 4, a, b);  // {lt, eq, gt}
      EXPECT_EQ(out[0], a < b) << a << " vs " << b;
      EXPECT_EQ(out[1], a == b) << a << " vs " << b;
      EXPECT_EQ(out[2], a > b) << a << " vs " << b;
    }
  }
}

TEST(MagnitudeComparator, ExactlyOneFlagSet) {
  const Circuit c = magnitude_comparator(5);
  for (std::uint64_t a : {0ULL, 7ULL, 19ULL, 31ULL}) {
    for (std::uint64_t b : {0ULL, 8ULL, 19ULL, 30ULL}) {
      const auto out = run_cmp(c, 5, a, b);
      EXPECT_EQ(int(out[0]) + int(out[1]) + int(out[2]), 1);
    }
  }
}

TEST(MagnitudeComparator, MsbDominates) {
  const Circuit c = magnitude_comparator(8);
  const auto out = run_cmp(c, 8, 0x80, 0x7F);
  EXPECT_TRUE(out[2]);  // 128 > 127 despite all-ones low bits
}

TEST(Comparators, WidthOne) {
  const Circuit eq = equality_comparator(1);
  EXPECT_TRUE(run_cmp(eq, 1, 0, 0)[0]);
  EXPECT_FALSE(run_cmp(eq, 1, 0, 1)[0]);
}

TEST(Comparators, RejectBadArgs) {
  EXPECT_THROW((void)equality_comparator(0), std::invalid_argument);
  EXPECT_THROW((void)magnitude_comparator(-2), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
