#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/bitpack.hpp"

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit buffer_chain(int length) {
  Circuit c;
  NodeId prev = c.add_input();
  for (int i = 0; i < length; ++i) prev = c.add_gate(GateType::kBuf, prev);
  c.add_output(prev);
  return c;
}

TEST(NoisySim, ZeroEpsilonIsClean) {
  const Circuit c = buffer_chain(4);
  NoisySim sim(c, 0.0, 1);
  const std::vector<Word> in{0x123456789ABCDEF0ULL};
  sim.eval(in);
  EXPECT_EQ(sim.output_values()[0], in[0]);
  for (Word e : sim.last_error_words()) EXPECT_EQ(e, 0ULL);
}

TEST(NoisySim, SingleGateFlipRate) {
  const Circuit c = buffer_chain(1);
  const double eps = 0.1;
  NoisySim sim(c, eps, 2);
  std::int64_t flips = 0;
  const int passes = 5000;
  const std::vector<Word> in{0};
  for (int i = 0; i < passes; ++i) {
    sim.eval(in);
    flips += popcount(sim.output_values()[0]);
  }
  const double rate = static_cast<double>(flips) / (64.0 * passes);
  const double sigma = std::sqrt(eps * (1 - eps) / (64.0 * passes));
  EXPECT_NEAR(rate, eps, 5 * sigma);
}

TEST(NoisySim, ChainErrorComposition) {
  // k cascaded eps-noisy buffers: output error = (1 - (1-2eps)^k) / 2.
  const int k = 3;
  const double eps = 0.05;
  const Circuit c = buffer_chain(k);
  NoisySim sim(c, eps, 3);
  std::int64_t flips = 0;
  const int passes = 8000;
  const std::vector<Word> in{0};
  for (int i = 0; i < passes; ++i) {
    sim.eval(in);
    flips += popcount(sim.output_values()[0]);
  }
  const double rate = static_cast<double>(flips) / (64.0 * passes);
  const double expected = (1.0 - std::pow(1.0 - 2 * eps, k)) / 2.0;
  const double sigma = std::sqrt(expected * (1 - expected) / (64.0 * passes));
  EXPECT_NEAR(rate, expected, 5 * sigma);
}

TEST(NoisySim, InputsNeverFlip) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(a);
  NoisySim sim(c, 0.5, 4);
  const std::vector<Word> in{0xDEADBEEFDEADBEEFULL};
  sim.eval(in);
  EXPECT_EQ(sim.output_values()[0], in[0]);
}

TEST(NoisySim, ConstantsNeverFlip) {
  Circuit c;
  c.add_input();
  const NodeId k = c.add_const(true);
  c.add_output(k);
  NoisySim sim(c, 0.5, 5);
  const std::vector<Word> in{0};
  sim.eval(in);
  EXPECT_EQ(sim.output_values()[0], kAllOnes);
}

TEST(NoisySim, PerGateEpsilonOverride) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId clean_gate = c.add_gate(GateType::kBuf, a);
  const NodeId noisy_gate = c.add_gate(GateType::kBuf, a);
  c.add_output(clean_gate);
  c.add_output(noisy_gate);
  std::vector<double> eps(c.node_count(), 0.0);
  eps[noisy_gate] = 0.5;
  NoisySim sim(c, std::move(eps), 6);
  const std::vector<Word> in{0};
  std::int64_t clean_flips = 0;
  std::int64_t noisy_flips = 0;
  for (int i = 0; i < 200; ++i) {
    sim.eval(in);
    clean_flips += popcount(sim.output_values()[0]);
    noisy_flips += popcount(sim.output_values()[1]);
  }
  EXPECT_EQ(clean_flips, 0);
  EXPECT_GT(noisy_flips, 4000);  // ~6400 expected at eps=0.5
}

TEST(NoisySim, RejectsBadEpsilon) {
  const Circuit c = buffer_chain(1);
  EXPECT_THROW(NoisySim(c, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(NoisySim(c, 0.6, 1), std::invalid_argument);
  EXPECT_THROW(NoisySim(c, std::vector<double>{0.1}, 1),
               std::invalid_argument);
}

TEST(NoisySim, FreshNoisePerEval) {
  const Circuit c = buffer_chain(1);
  NoisySim sim(c, 0.5, 7);
  const std::vector<Word> in{0};
  sim.eval(in);
  const Word first = sim.output_values()[0];
  sim.eval(in);
  const Word second = sim.output_values()[0];
  EXPECT_NE(first, second);  // 2^-64 false-failure probability
}

}  // namespace
}  // namespace enb::sim
