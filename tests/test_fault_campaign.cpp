// Campaign engine: determinism across thread counts, batch-vs-direct
// equality for the FaultCampaignRequest kind, manifest parsing, the
// detection-table `.ans` view, and ft/ masking metrics.
#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"

namespace enb::fault {
namespace {

using netlist::Circuit;

TEST(FaultCampaign, BitIdenticalForAnyThreadCount) {
  const Circuit circuit = gen::find_benchmark("rca8").build();
  CampaignOptions options;
  options.patterns = 160;
  options.shard_patterns = 32;
  const FaultCampaignResult serial =
      run_campaign(circuit, nullptr, options, exec::Parallelism::serial());
  const FaultCampaignResult pool =
      run_campaign(circuit, nullptr, options, exec::Parallelism::global_pool());
  const FaultCampaignResult wide =
      run_campaign(circuit, nullptr, options, exec::Parallelism::dedicated(64));
  EXPECT_EQ(serial, pool);
  EXPECT_EQ(serial, wide);
  EXPECT_EQ(serial.patterns, 160u);
  EXPECT_GT(serial.detected, 0u);
}

TEST(FaultCampaign, ScaledOptionsBitIdenticalForAnyThreadCount) {
  // The thread-count contract survives every scale axis at once: dropping,
  // wide lanes, and a sampled universe.
  const Circuit circuit = gen::find_benchmark("rca8").build();
  CampaignOptions options;
  options.patterns = 160;
  options.shard_patterns = 32;
  options.drop = true;
  options.lanes = LaneWidth::k256;
  options.sample = 50;
  const FaultCampaignResult serial =
      run_campaign(circuit, nullptr, options, exec::Parallelism::serial());
  const FaultCampaignResult pool =
      run_campaign(circuit, nullptr, options, exec::Parallelism::global_pool());
  const FaultCampaignResult wide =
      run_campaign(circuit, nullptr, options, exec::Parallelism::dedicated(64));
  EXPECT_EQ(serial, pool);
  EXPECT_EQ(serial, wide);
  EXPECT_EQ(serial.sampled, 50u);
  EXPECT_GT(serial.detected, 0u);
}

TEST(FaultCampaign, ExhaustiveC17SelfCoverageIsComplete) {
  // c17 is fully testable: every collapsed class is detected by some input
  // assignment, so exhaustive self-grading reports coverage 1.
  const Circuit c17 = gen::find_benchmark("c17").build();
  CampaignOptions options;
  options.exhaustive = true;
  const FaultCampaignResult result = run_campaign(c17, nullptr, options);
  EXPECT_EQ(result.patterns, 32u);
  EXPECT_EQ(result.detected, result.classes);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.masked_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result.gate_overhead, 1.0);
}

TEST(FaultCampaign, CollapseChangesClassesNotCoverageRatio) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  CampaignOptions collapsed;
  collapsed.exhaustive = true;
  CampaignOptions full = collapsed;
  full.collapse = false;
  const FaultCampaignResult a = run_campaign(c17, nullptr, collapsed);
  const FaultCampaignResult b = run_campaign(c17, nullptr, full);
  EXPECT_LT(a.classes, b.classes);
  EXPECT_EQ(b.classes, b.sites);
  // c17 is fully testable either way.
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
}

TEST(FaultCampaign, NmrMaskingCampaignReportsOverheadAndMasking) {
  const Circuit base = gen::find_benchmark("c17").build();
  const Circuit nmr = ft::nmr_transform(base).circuit;
  CampaignOptions options;
  options.exhaustive = true;
  const FaultCampaignResult result = run_campaign(nmr, &base, options);
  // Triplication masks most faults but voter faults remain observable.
  EXPECT_GT(result.masked_fraction, 0.5);
  EXPECT_GT(result.detected, 0u);
  EXPECT_GT(result.gate_overhead, 3.0);
  EXPECT_GT(result.overhead_per_masked, result.gate_overhead);
  EXPECT_EQ(result.golden_gates, base.gate_count());
}

TEST(FaultCampaign, BatchMatchesDirectEvaluate) {
  const analysis::CompiledCircuit nmr = analysis::compile(
      ft::nmr_transform(gen::find_benchmark("c17").build()).circuit);
  const analysis::CompiledCircuit base =
      analysis::compile(gen::find_benchmark("c17").build());

  analysis::AnalysisRequest request;
  request.name = "fc";
  request.circuit = nmr;
  request.golden = base;
  analysis::FaultCampaignRequest spec;
  spec.options.patterns = 96;
  spec.options.shard_patterns = 16;
  spec.options.seed = 123;
  spec.options.drop = true;
  spec.options.lanes = LaneWidth::k512;
  spec.options.sample = 80;
  request.options = spec;

  const analysis::AnalysisResult direct = analysis::evaluate(request);
  ASSERT_TRUE(direct.ok) << direct.error;

  exec::BatchEvaluator batch;
  batch.submit(request);
  const std::vector<analysis::AnalysisResult> results = batch.run();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metrics, direct.metrics);
  const auto* direct_payload = direct.get<FaultCampaignResult>();
  const auto* batch_payload = results[0].get<FaultCampaignResult>();
  ASSERT_NE(direct_payload, nullptr);
  ASSERT_NE(batch_payload, nullptr);
  EXPECT_EQ(*direct_payload, *batch_payload);
}

TEST(FaultCampaign, BatchIsolatesInvalidCampaigns) {
  const analysis::CompiledCircuit c17 =
      analysis::compile(gen::find_benchmark("c17").build());
  exec::BatchEvaluator batch;

  analysis::AnalysisRequest bad;
  bad.name = "bad";
  bad.circuit = c17;
  analysis::FaultCampaignRequest bad_spec;
  bad_spec.options.patterns = 0;  // invalid: empty random budget
  bad.options = bad_spec;
  batch.submit(std::move(bad));

  analysis::AnalysisRequest good;
  good.name = "good";
  good.circuit = c17;
  analysis::FaultCampaignRequest good_spec;
  good_spec.options.patterns = 32;
  good.options = good_spec;
  batch.submit(std::move(good));

  const std::vector<analysis::AnalysisResult> results = batch.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("patterns"), std::string::npos);
  EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(FaultCampaign, ManifestParsesFaultCampaignLines) {
  const analysis::CompiledCircuit c17 =
      analysis::compile(gen::find_benchmark("c17").build());
  std::istringstream manifest(
      "fc1 kind=fault-campaign circuit=c17 budget=64 seed=9\n"
      "fc2 kind=fault-campaign circuit=c17 mode=exhaustive\n"
      "fc3 kind=fault-campaign circuit=c17 mode=random budget=12\n"
      "fc4 kind=fault-campaign circuit=c17 budget=32 drop=1 lanes=256 "
      "sample=10\n");
  const std::vector<analysis::AnalysisRequest> requests =
      exec::parse_manifest_requests(manifest,
                                    [&](const std::string&) { return c17; });
  ASSERT_EQ(requests.size(), 4u);
  const auto& fc1 =
      std::get<analysis::FaultCampaignRequest>(requests[0].options);
  EXPECT_EQ(fc1.options.patterns, 64u);
  EXPECT_EQ(fc1.options.seed, 9u);
  EXPECT_FALSE(fc1.options.exhaustive);
  const auto& fc2 =
      std::get<analysis::FaultCampaignRequest>(requests[1].options);
  EXPECT_TRUE(fc2.options.exhaustive);
  const auto& fc3 =
      std::get<analysis::FaultCampaignRequest>(requests[2].options);
  EXPECT_FALSE(fc3.options.exhaustive);
  EXPECT_EQ(fc3.options.patterns, 12u);
  const auto& fc4 =
      std::get<analysis::FaultCampaignRequest>(requests[3].options);
  EXPECT_TRUE(fc4.options.drop);
  EXPECT_EQ(fc4.options.lanes, LaneWidth::k256);
  EXPECT_EQ(fc4.options.sample, 10u);
}

TEST(FaultCampaign, ManifestRejectsBadModes) {
  const analysis::CompiledCircuit c17 =
      analysis::compile(gen::find_benchmark("c17").build());
  const auto resolve = [&](const std::string&) { return c17; };
  std::istringstream bad_value(
      "fc kind=fault-campaign circuit=c17 mode=sometimes\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(bad_value, resolve),
               std::invalid_argument);
  std::istringstream wrong_kind("p kind=profile circuit=c17 mode=random\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(wrong_kind, resolve),
               std::invalid_argument);
  std::istringstream bad_lanes(
      "fc kind=fault-campaign circuit=c17 budget=8 lanes=100\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(bad_lanes, resolve),
               std::invalid_argument);
  std::istringstream bad_drop(
      "fc kind=fault-campaign circuit=c17 budget=8 drop=2\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(bad_drop, resolve),
               std::invalid_argument);
  std::istringstream drop_on_profile("p kind=profile circuit=c17 drop=1\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(drop_on_profile, resolve),
               std::invalid_argument);
  std::istringstream sample_on_activity(
      "a kind=activity circuit=c17 sample=4\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(sample_on_activity, resolve),
               std::invalid_argument);
}

TEST(FaultCampaign, CanonicalSpecIsValueComplete) {
  analysis::FaultCampaignRequest a;
  const std::string base = analysis::canonical_spec(a);
  EXPECT_NE(base.find("fault-campaign"), std::string::npos);
  analysis::FaultCampaignRequest b = a;
  b.options.seed ^= 1;
  EXPECT_NE(analysis::canonical_spec(b), base);
  analysis::FaultCampaignRequest c = a;
  c.options.exhaustive = true;
  EXPECT_NE(analysis::canonical_spec(c), base);
  analysis::FaultCampaignRequest d = a;
  d.options.shard_patterns /= 2;
  EXPECT_NE(analysis::canonical_spec(d), base);
  analysis::FaultCampaignRequest e = a;
  e.options.bundle_width = 3;
  EXPECT_NE(analysis::canonical_spec(e), base);
  analysis::FaultCampaignRequest f = a;
  f.options.collapse = false;
  EXPECT_NE(analysis::canonical_spec(f), base);
  analysis::FaultCampaignRequest g = a;
  g.options.drop = true;
  EXPECT_NE(analysis::canonical_spec(g), base);
  analysis::FaultCampaignRequest h = a;
  h.options.sample = 16;
  EXPECT_NE(analysis::canonical_spec(h), base);
  // Lane width is execution policy, not part of the result's identity: a
  // cached result computed at any width answers a request at any other.
  analysis::FaultCampaignRequest i = a;
  i.options.lanes = LaneWidth::k512;
  EXPECT_EQ(analysis::canonical_spec(i), base);
}

TEST(FaultCampaign, DetectionTableAgreesWithAggregateCounts) {
  const Circuit circuit = gen::find_benchmark("parity8").build();
  CampaignOptions options;
  options.patterns = 48;
  options.shard_patterns = 16;
  const FaultUniverse universe = FaultUniverse::build(circuit);
  const DetectionTable serial_table = build_detection_table(
      circuit, circuit, universe, options, exec::Parallelism::serial());
  const DetectionTable wide_table = build_detection_table(
      circuit, circuit, universe, options, exec::Parallelism::dedicated(64));
  EXPECT_EQ(serial_table.patterns, wide_table.patterns);
  EXPECT_EQ(serial_table.detected, wide_table.detected);
  EXPECT_EQ(serial_table.passes, wide_table.passes);

  const FaultCampaignResult via_table = finalize_campaign(
      circuit, circuit, universe, options,
      counts_from_table(universe, serial_table));
  const FaultCampaignResult direct = run_campaign(circuit, nullptr, options);
  EXPECT_EQ(via_table, direct);
}

TEST(FaultCampaign, AnsRowsCoverEveryNetAndExpandClasses) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  CampaignOptions options;
  options.patterns = 2;
  options.shard_patterns = 2;
  const FaultUniverse universe = FaultUniverse::build(c17);
  const DetectionTable table =
      build_detection_table(c17, c17, universe, options);
  std::ostringstream out;
  write_ans(out, c17, universe, table);

  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "# pattern net sa0_eq sa1_eq");
  std::size_t rows = 0;
  std::string pattern, net;
  int sa0_eq = 0;
  int sa1_eq = 0;
  while (in >> pattern >> net >> sa0_eq >> sa1_eq) {
    ++rows;
    EXPECT_TRUE(sa0_eq == 0 || sa0_eq == 1);
    EXPECT_TRUE(sa1_eq == 0 || sa1_eq == 1);
  }
  EXPECT_EQ(rows, 2 * universe.num_nets());  // patterns x nets

  // Equivalent sites must print identical bits: re-derive one collapsed
  // pair and check the rows agree (expansion is exact by equivalence).
  // c17: input "1" feeds only NAND "10", so 1 sa0 == 10 sa1.
  const std::size_t site_in = 0;   // node 0 ("1") sa0
  const std::size_t site_out = 2 * 5 + 1;  // node 5 ("10") sa1
  ASSERT_EQ(universe.class_of(site_in), universe.class_of(site_out));
}

TEST(FaultCampaign, ValidatesInterfaceAndBudgets) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  const Circuit rca8 = gen::find_benchmark("rca8").build();
  CampaignOptions options;
  EXPECT_THROW(validate_campaign_inputs(c17, rca8, options),
               std::invalid_argument);
  CampaignOptions zero_shard;
  zero_shard.shard_patterns = 0;
  EXPECT_THROW(validate_campaign_inputs(c17, c17, zero_shard),
               std::invalid_argument);
  CampaignOptions exhaustive;
  exhaustive.exhaustive = true;
  const Circuit wide = gen::find_benchmark("rca32").build();
  EXPECT_THROW(validate_campaign_inputs(wide, wide, exhaustive),
               std::invalid_argument);
}

TEST(FaultCampaign, ExhaustiveCapIsATypedError) {
  // The 20-input exhaustive cap surfaces as its own exception type carrying
  // the offending input count, so callers can distinguish "ask for random
  // patterns instead" from ordinary bad arguments.
  const Circuit wide = gen::find_benchmark("rca32").build();
  CampaignOptions exhaustive;
  exhaustive.exhaustive = true;
  try {
    validate_campaign_inputs(wide, wide, exhaustive);
    FAIL() << "expected ExhaustiveCapError";
  } catch (const ExhaustiveCapError& error) {
    EXPECT_EQ(error.logical_inputs(), wide.num_inputs());
    EXPECT_NE(std::string(error.what()).find("exhaustive"),
              std::string::npos);
  }
}

TEST(FaultCampaign, BatchIsolatesExhaustiveCapError) {
  // The typed cap error rides the batch error-isolation path like any other
  // per-request failure: the offending job reports ok=false with the cap
  // message while its neighbors complete.
  const analysis::CompiledCircuit rca32 =
      analysis::compile(gen::find_benchmark("rca32").build());
  exec::BatchEvaluator batch;

  analysis::AnalysisRequest capped;
  capped.name = "capped";
  capped.circuit = rca32;
  analysis::FaultCampaignRequest capped_spec;
  capped_spec.options.exhaustive = true;
  capped.options = capped_spec;
  batch.submit(std::move(capped));

  analysis::AnalysisRequest good;
  good.name = "good";
  good.circuit = rca32;
  analysis::FaultCampaignRequest good_spec;
  good_spec.options.patterns = 16;
  good.options = good_spec;
  batch.submit(std::move(good));

  const std::vector<analysis::AnalysisResult> results = batch.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("exhaustive"), std::string::npos);
  EXPECT_TRUE(results[1].ok) << results[1].error;
}

}  // namespace
}  // namespace enb::fault
