#include "ft/multiplex.hpp"

#include <gtest/gtest.h>

#include "gen/iscas.hpp"
#include "gen/parity.hpp"
#include "sim/exhaustive.hpp"
#include "synth/mapper.hpp"

namespace enb::ft {
namespace {

TEST(Multiplex, NoiselessMultiplexedCircuitIsCorrect) {
  const auto base = gen::c17();
  const MultiplexedCircuit mc = multiplex_transform(base);
  // With epsilon = 0 every wire of a bundle carries the correct value, so
  // the decode matches the golden circuit exactly.
  const auto rel = estimate_multiplexed_reliability(mc, base, 0.0);
  EXPECT_EQ(rel.failures, 0u);
}

TEST(Multiplex, StructureScalesWithBundleWidth) {
  const auto base = gen::c17();
  MultiplexOptions options;
  options.bundle_width = 5;
  options.restorative_stages = 0;
  const MultiplexedCircuit mc = multiplex_transform(base, options);
  // Executive stages only: 5 copies of each gate.
  EXPECT_EQ(mc.circuit.gate_count(), 5 * base.gate_count());
  EXPECT_EQ(mc.circuit.num_inputs(), 5 * base.num_inputs());
  EXPECT_EQ(mc.output_bundles.size(), base.num_outputs());
}

TEST(Multiplex, RestorativeStagesAddMajorities) {
  const auto base = gen::c17();
  MultiplexOptions plain;
  plain.restorative_stages = 0;
  MultiplexOptions restored;
  restored.restorative_stages = 1;
  const auto without = multiplex_transform(base, plain);
  const auto with = multiplex_transform(base, restored);
  // Each restorative stage adds one maj3 voter (4 two-input gates) per wire
  // of the default 5-wire bundle, per gate of the original circuit.
  EXPECT_EQ(with.circuit.gate_count() - without.circuit.gate_count(),
            base.gate_count() * 5 * 4);
}

TEST(Multiplex, ImprovesOverBareCircuitAtLowEpsilon) {
  const auto base = gen::parity_tree(4, 2);
  MultiplexOptions options;
  options.bundle_width = 7;
  options.restorative_stages = 1;
  const MultiplexedCircuit mc = multiplex_transform(base, options);
  const double eps = 0.005;
  sim::ReliabilityOptions rel_options;
  rel_options.trials = 1 << 16;
  const auto bare = sim::estimate_reliability(base, eps, rel_options);
  const auto muxed = estimate_multiplexed_reliability(mc, base, eps, rel_options);
  EXPECT_LT(muxed.delta_hat, bare.delta_hat);
}

TEST(Multiplex, DeterministicPerSeed) {
  const auto base = gen::c17();
  MultiplexOptions options;
  options.seed = 99;
  const auto a = multiplex_transform(base, options);
  const auto b = multiplex_transform(base, options);
  EXPECT_EQ(a.circuit.node_count(), b.circuit.node_count());
  for (netlist::NodeId id = 0; id < a.circuit.node_count(); ++id) {
    EXPECT_EQ(a.circuit.fanins(id).size(), b.circuit.fanins(id).size());
  }
}

TEST(Multiplex, RejectsWideGates) {
  netlist::Circuit wide;
  const auto a = wide.add_input();
  const auto b = wide.add_input();
  const auto c = wide.add_input();
  wide.add_output(wide.add_gate(netlist::GateType::kAnd,
                                std::vector<netlist::NodeId>{a, b, c}));
  EXPECT_THROW((void)multiplex_transform(wide), std::invalid_argument);
  // After mapping to a 2-input basis it works.
  synth::MapOptions map_options;
  map_options.library = synth::Library::generic(2);
  const auto mapped = synth::map_to_library(wide, map_options);
  EXPECT_NO_THROW((void)multiplex_transform(mapped.circuit));
}

TEST(Multiplex, RejectsBadOptions) {
  const auto base = gen::c17();
  MultiplexOptions options;
  options.bundle_width = 4;  // even
  EXPECT_THROW((void)multiplex_transform(base, options), std::invalid_argument);
  options.bundle_width = 1;
  EXPECT_THROW((void)multiplex_transform(base, options), std::invalid_argument);
  options = {};
  options.restorative_stages = -1;
  EXPECT_THROW((void)multiplex_transform(base, options), std::invalid_argument);
}

TEST(Multiplex, ReplicaRangeBracketsTheMultiplexedFabric) {
  const auto base = gen::c17();
  for (const int width : {3, 5}) {
    MultiplexOptions options;
    options.bundle_width = width;
    const MultiplexedCircuit mc = multiplex_transform(base, options);
    const auto [begin, end] = mc.replica_range();
    EXPECT_EQ(begin, mc.replica_begin);
    EXPECT_EQ(end, mc.replica_end);
    // Everything below the range is an input bundle wire; the multiplexed
    // logic fills the rest of the node table (outputs are marks, not nodes).
    EXPECT_EQ(begin, base.num_inputs() * static_cast<std::size_t>(width));
    EXPECT_EQ(end, mc.circuit.node_count());
    for (const auto& wires : mc.output_bundles) {
      for (const netlist::NodeId wire : wires) {
        EXPECT_GE(wire, begin);
        EXPECT_LT(wire, end);
      }
    }
  }
}

TEST(Multiplex, ReliabilityInterfaceChecks) {
  const auto base = gen::c17();
  const auto other = gen::parity_tree(4, 2);
  const MultiplexedCircuit mc = multiplex_transform(base);
  EXPECT_THROW((void)estimate_multiplexed_reliability(mc, other, 0.01),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::ft
