#include "report/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace enb::report {
namespace {

TEST(Csv, BasicRows) {
  std::ostringstream out;
  write_csv(out, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream out;
  write_csv_row(out, {"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, RowWidthChecked) {
  std::ostringstream out;
  EXPECT_THROW(write_csv(out, {"a", "b"}, {{"only"}}), std::invalid_argument);
}

TEST(Csv, SeriesLayout) {
  Series s1("f2", {0.1, 0.2}, {1.0, 2.0});
  Series s2("f3", {0.1, 0.2}, {3.0, 4.0});
  std::ostringstream out;
  write_series_csv(out, "eps", {s1, s2});
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "eps,f2,f3");
  std::getline(in, line);
  EXPECT_EQ(line, "0.1,1,3");
}

TEST(Csv, SeriesLengthMismatchRejected) {
  Series s1("a", {0.1}, {1.0});
  Series s2("b", {0.1, 0.2}, {1.0, 2.0});
  std::ostringstream out;
  EXPECT_THROW(write_series_csv(out, "x", {s1, s2}), std::invalid_argument);
  EXPECT_THROW(write_series_csv(out, "x", {}), std::invalid_argument);
}

TEST(Csv, FileRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/enb_csv_test";
  const std::string path = dir + "/nested/out.csv";
  write_csv_file(path, {"h"}, {{"v"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::remove(path.c_str());
}

TEST(Csv, EnsureDirectory) {
  const std::string dir = ::testing::TempDir() + "/enb_csv_dir/a/b";
  EXPECT_TRUE(ensure_directory(dir));
  EXPECT_TRUE(ensure_directory(dir));  // idempotent
}

}  // namespace
}  // namespace enb::report
