#include "gen/parity.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "sim/exhaustive.hpp"

namespace enb::gen {
namespace {

using sim::popcount;
using sim::Word;

bool is_parity_function(const netlist::Circuit& c) {
  const auto tables = sim::truth_tables(c);
  if (tables.size() != 1) return false;
  const int n = static_cast<int>(c.num_inputs());
  bool ok = true;
  sim::for_each_exhaustive_block(
      n, [&](std::uint64_t block, std::span<const Word>, Word valid) {
        for (int lane = 0; lane < 64; ++lane) {
          if (((valid >> lane) & 1U) == 0) continue;
          const std::uint64_t assignment = block * 64 + lane;
          const bool expect = (popcount(assignment) & 1) != 0;
          const bool got = ((tables[0][block] >> lane) & 1U) != 0;
          if (expect != got) ok = false;
        }
      });
  return ok;
}

class ParityTreeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParityTreeTest, ComputesParity) {
  const auto [n, k] = GetParam();
  const auto c = parity_tree(n, k);
  EXPECT_EQ(c.num_inputs(), static_cast<std::size_t>(n));
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_TRUE(is_parity_function(c)) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParityTreeTest,
                         ::testing::Combine(::testing::Values(1, 2, 5, 10, 16),
                                            ::testing::Values(2, 3, 4)));

TEST(ParityTree, GateCountBinary) {
  // n-1 XOR2 gates for fanin 2.
  EXPECT_EQ(parity_tree(10, 2).gate_count(), 9u);
  EXPECT_EQ(parity_tree(16, 2).gate_count(), 15u);
}

TEST(ParityTree, DepthIsLogarithmic) {
  EXPECT_EQ(netlist::compute_stats(parity_tree(16, 2)).depth, 4);
  EXPECT_EQ(netlist::compute_stats(parity_tree(16, 4)).depth, 2);
}

TEST(ParityShannon, ComputesParity) {
  for (int n : {1, 2, 4, 8, 10}) {
    EXPECT_TRUE(is_parity_function(parity_shannon(n))) << "n=" << n;
  }
}

TEST(ParityShannon, MuxChainShape) {
  // n-1 mux stages of 4 gates each, plus the first inverter and one inverter
  // per stage (for the complement track), minus the unused final complement.
  const auto c = parity_shannon(10);
  EXPECT_EQ(c.num_inputs(), 10u);
  const auto stats = netlist::compute_stats(c);
  // Depth grows linearly in n — the OBDD chain.
  EXPECT_GE(stats.depth, 9);
}

TEST(ParityShannon, PaperNodeCountModel) {
  // The paper's Figure 3 parameter: S0 = 21 for the 10-input parity under
  // the 2n+1 Shannon/OBDD node-count model.
  EXPECT_EQ(parity_shannon_node_count(10), 21);
  EXPECT_EQ(parity_shannon_node_count(4), 9);
}

TEST(ParityGenerators, RejectBadArgs) {
  EXPECT_THROW((void)parity_tree(0, 2), std::invalid_argument);
  EXPECT_THROW((void)parity_tree(4, 1), std::invalid_argument);
  EXPECT_THROW((void)parity_shannon(0), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
