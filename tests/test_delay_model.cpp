#include "core/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::core {
namespace {

TEST(DelayModel, DelayShapeDecreasesWithSupply) {
  const TechnologyParams tech;
  EXPECT_GT(gate_delay_shape(0.6, tech), gate_delay_shape(1.2, tech));
  EXPECT_GT(gate_delay_shape(1.2, tech), gate_delay_shape(2.0, tech));
}

TEST(DelayModel, ScalesAreUnityAtNominal) {
  const TechnologyParams tech;
  EXPECT_DOUBLE_EQ(delay_scale(tech.vdd, tech), 1.0);
  EXPECT_DOUBLE_EQ(energy_scale(tech.vdd, tech), 1.0);
}

TEST(DelayModel, EnergyQuadraticInSupply) {
  const TechnologyParams tech;
  EXPECT_NEAR(energy_scale(0.6, tech), 0.25, 1e-12);
  EXPECT_NEAR(energy_scale(2.4, tech), 4.0, 1e-12);
}

TEST(DelayModel, IsoEnergySupply) {
  const TechnologyParams tech;
  // Energy factor 1.44 -> V' = 1.2/1.2 = 1.0 V.
  EXPECT_NEAR(iso_energy_vdd(1.44, tech), 1.0, 1e-9);
  // Energy factor 1 -> nominal.
  EXPECT_NEAR(iso_energy_vdd(1.0, tech), tech.vdd, 1e-12);
}

TEST(DelayModel, IsoEnergyFailsBelowThreshold) {
  const TechnologyParams tech;  // vdd=1.2, vt=0.3 -> max factor (1.2/0.3)^2=16
  EXPECT_THROW((void)iso_energy_vdd(17.0, tech), std::invalid_argument);
  EXPECT_THROW((void)iso_energy_vdd(0.5, tech), std::invalid_argument);
}

TEST(DelayModel, IsoDelaySupplySolvesEquation) {
  const TechnologyParams tech;
  const double factor = 1.5;
  const double vdd = iso_delay_vdd(factor, tech);
  EXPECT_GT(vdd, tech.vdd);
  EXPECT_NEAR(factor * delay_scale(vdd, tech), 1.0, 1e-6);
}

TEST(DelayModel, IsoDelayFailsWhenUncompensatable) {
  TechnologyParams tech;
  tech.max_vdd = 1.3;  // barely any headroom
  EXPECT_THROW((void)iso_delay_vdd(10.0, tech), std::invalid_argument);
}

TEST(DelayModel, ApplyIsoEnergyMeetsBudget) {
  const TechnologyParams tech;
  const ScalingOutcome out = apply_iso_energy(1.44, 1.2, tech);
  EXPECT_NEAR(out.energy_factor, 1.0, 1e-9);
  // Lower supply slows the circuit further.
  EXPECT_GT(out.delay_factor, 1.2);
}

TEST(DelayModel, ApplyIsoDelayMeetsDeadline) {
  const TechnologyParams tech;
  const ScalingOutcome out = apply_iso_delay(1.44, 1.2, tech);
  EXPECT_NEAR(out.delay_factor, 1.0, 1e-6);
  // Higher supply costs more energy than the raw factor.
  EXPECT_GT(out.energy_factor, 1.44);
}

TEST(DelayModel, TradeoffDirectionsAreOpposite) {
  // Section 5.2's qualitative claim: iso-energy inflates delay, iso-delay
  // inflates energy; both strictly worse than the raw (uncompensated) point
  // in the other dimension.
  const TechnologyParams tech;
  const double raw_e = 1.3;
  const double raw_d = 1.15;
  const ScalingOutcome iso_e = apply_iso_energy(raw_e, raw_d, tech);
  const ScalingOutcome iso_d = apply_iso_delay(raw_e, raw_d, tech);
  EXPECT_GT(iso_e.delay_factor, raw_d);
  EXPECT_GT(iso_d.energy_factor, raw_e);
}

TEST(DelayModel, AlphaTwoLongChannel) {
  TechnologyParams tech;
  tech.alpha = 2.0;
  // Same qualitative behaviour under the square law.
  EXPECT_GT(delay_scale(0.8, tech), 1.0);
  EXPECT_LT(delay_scale(2.0, tech), 1.0);
  const double vdd = iso_delay_vdd(1.3, tech);
  EXPECT_NEAR(1.3 * delay_scale(vdd, tech), 1.0, 1e-6);
}

TEST(DelayModel, ValidatesTechnology) {
  TechnologyParams bad;
  bad.vt = 1.5;  // above vdd
  EXPECT_THROW((void)gate_delay_shape(1.2, bad), std::invalid_argument);
  TechnologyParams low;
  EXPECT_THROW((void)gate_delay_shape(0.2, low), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
