#include "bdd/circuit_to_bdd.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "sim/exhaustive.hpp"

namespace enb::bdd {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(CircuitToBdd, GateTypesMatchSemantics) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  c.add_output(c.add_gate(GateType::kNand, a, b));
  c.add_output(c.add_gate(GateType::kOr, a, b));
  c.add_output(c.add_gate(GateType::kNor, a, b));
  c.add_output(c.add_gate(GateType::kXor, a, b));
  c.add_output(c.add_gate(GateType::kXnor, a, b));
  c.add_output(c.add_gate(GateType::kNot, a));
  c.add_output(c.add_gate(GateType::kBuf, b));

  Bdd mgr(2);
  const auto outs = build_output_bdds(mgr, c);
  const Ref x = mgr.var_ref(0);
  const Ref y = mgr.var_ref(1);
  EXPECT_EQ(outs[0], mgr.apply_and(x, y));
  EXPECT_EQ(outs[1], mgr.apply_not(mgr.apply_and(x, y)));
  EXPECT_EQ(outs[2], mgr.apply_or(x, y));
  EXPECT_EQ(outs[3], mgr.apply_not(mgr.apply_or(x, y)));
  EXPECT_EQ(outs[4], mgr.apply_xor(x, y));
  EXPECT_EQ(outs[5], mgr.apply_not(mgr.apply_xor(x, y)));
  EXPECT_EQ(outs[6], mgr.apply_not(x));
  EXPECT_EQ(outs[7], y);
}

TEST(CircuitToBdd, ConstantsAndMaj) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  const NodeId k1 = c.add_const(true);
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  c.add_output(c.add_gate(GateType::kAnd, a, k1));

  Bdd mgr(3);
  const auto outs = build_output_bdds(mgr, c);
  EXPECT_EQ(outs[0],
            mgr.apply_maj(mgr.var_ref(0), mgr.var_ref(1), mgr.var_ref(2)));
  EXPECT_EQ(outs[1], mgr.var_ref(0));
}

TEST(CircuitToBdd, WideGatesFold) {
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(c.add_input());
  c.add_output(c.add_gate(GateType::kXor, ins));
  Bdd mgr(5);
  const auto outs = build_output_bdds(mgr, c);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(outs[0]), 0.5);
}

TEST(CircuitToBdd, ManagerTooSmallThrows) {
  Circuit c;
  c.add_input();
  c.add_input();
  c.add_output(c.inputs()[0]);
  Bdd mgr(1);
  EXPECT_THROW((void)build_node_bdds(mgr, c), std::invalid_argument);
}

TEST(CircuitToBdd, C17SatCounts) {
  const Circuit c17 = netlist::read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)");
  Bdd mgr(5);
  const auto outs = build_output_bdds(mgr, c17);
  // Cross-check satisfying-assignment fractions against exhaustive sim.
  const auto tables = sim::truth_tables(c17);
  for (std::size_t o = 0; o < outs.size(); ++o) {
    std::int64_t ones = 0;
    for (sim::Word w : tables[o]) ones += sim::popcount(w);
    EXPECT_NEAR(mgr.sat_fraction(outs[o]), ones / 32.0, 1e-12) << "output " << o;
  }
}

}  // namespace
}  // namespace enb::bdd
