#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"

namespace enb::netlist {
namespace {

constexpr const char* kC17 = R"(# c17 (ISCAS'85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIo, ParsesC17) {
  const Circuit c = read_bench_string(kC17, "c17");
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.gate_count(), 6u);
  const CircuitStats stats = compute_stats(c);
  EXPECT_EQ(stats.gate_histogram.at(GateType::kNand), 6u);
  EXPECT_EQ(stats.depth, 3);
}

TEST(BenchIo, PreservesInputOrder) {
  const Circuit c = read_bench_string(kC17);
  EXPECT_EQ(c.node_name(c.inputs()[0]), "1");
  EXPECT_EQ(c.node_name(c.inputs()[1]), "2");
  EXPECT_EQ(c.node_name(c.inputs()[4]), "7");
  EXPECT_EQ(c.output_name(0), "22");
  EXPECT_EQ(c.output_name(1), "23");
}

TEST(BenchIo, ResolvesForwardReferences) {
  const Circuit c = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = AND(mid, a)
mid = NOT(a)
)");
  EXPECT_EQ(c.gate_count(), 2u);
  EXPECT_EQ(c.type(c.outputs()[0]), GateType::kAnd);
}

TEST(BenchIo, SupportsConstantsAndAliases) {
  const Circuit c = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
k = CONST1()
b = BUFF(a)
i = INV(b)
y = OR(i, k)
)");
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_EQ(c.gate_count(), 3u);  // buf, inv, or (const excluded)
}

TEST(BenchIo, CommentsAndBlankLines) {
  const Circuit c = read_bench_string(
      "# header\n\nINPUT(a)  # trailing comment\n\nOUTPUT(a)\n");
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_EQ(c.num_outputs(), 1u);
}

TEST(BenchIo, RejectsUndefinedSignal) {
  EXPECT_THROW((void)read_bench_string("OUTPUT(y)\ny = AND(a, b)\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsSequentialGates) {
  EXPECT_THROW(
      (void)read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"),
      BenchParseError);
}

TEST(BenchIo, RejectsCycles) {
  EXPECT_THROW((void)read_bench_string(R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = NOT(x)
)"),
               BenchParseError);
}

TEST(BenchIo, RejectsDuplicateDefinition) {
  EXPECT_THROW((void)read_bench_string(R"(
INPUT(a)
OUTPUT(x)
x = NOT(a)
x = BUF(a)
)"),
               BenchParseError);
}

TEST(BenchIo, RejectsBadArity) {
  EXPECT_THROW((void)read_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(x)
x = NOT(a, b)
)"),
               BenchParseError);
}

TEST(BenchIo, RoundTrip) {
  const Circuit original = read_bench_string(kC17, "c17");
  const std::string text = write_bench_string(original);
  const Circuit reread = read_bench_string(text, "c17_rt");
  EXPECT_EQ(reread.num_inputs(), original.num_inputs());
  EXPECT_EQ(reread.num_outputs(), original.num_outputs());
  EXPECT_EQ(reread.gate_count(), original.gate_count());
  // Names survive the round trip.
  EXPECT_EQ(reread.node_name(reread.inputs()[0]), "1");
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW((void)read_bench_file("/nonexistent/path.bench"),
               BenchParseError);
}

#ifdef ENB_DATA_DIR
TEST(BenchIo, ReadsShippedC17Fixture) {
  const Circuit c = read_bench_file(std::string(ENB_DATA_DIR) + "/c17.bench");
  EXPECT_EQ(c.name(), "c17");  // derived from the file name
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.gate_count(), 6u);
}

TEST(BenchIo, FileWriteReadRoundTrip) {
  const Circuit original =
      read_bench_file(std::string(ENB_DATA_DIR) + "/c17.bench");
  const std::string path = ::testing::TempDir() + "/c17_roundtrip.bench";
  write_bench_file(original, path);
  const Circuit reread = read_bench_file(path);
  EXPECT_EQ(reread.gate_count(), original.gate_count());
  EXPECT_EQ(reread.num_inputs(), original.num_inputs());
  std::remove(path.c_str());
}
#endif

}  // namespace
}  // namespace enb::netlist
