// Soundness property tests for the static untestability prover.
//
// The prover's claim is absolute: a pruned class is *never* detected by any
// pattern. On circuits small enough to enumerate (<= 20 logical inputs) that
// claim is checkable exactly — simulate every pruned class under every one
// of the 2^n assignments with the scalar reference simulator and demand zero
// detections. The suite runs that check over the generator small suite,
// seeded random DAGs (whose unused cones exercise the dead-net rule), and
// hand-built circuits that hit each proof rule on purpose, including the
// probe-learned-constant trap the prover must NOT fall into.
//
// The second half pins the campaign-layer contract: pruning shrinks the
// active set and the coverage denominator but leaves every per-class record
// bit-identical, for any thread count and lane width.
#include "fault/untestable.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_sim.hpp"
#include "gen/random_circuit.hpp"
#include "gen/suite.hpp"
#include "netlist/circuit.hpp"
#include "sim/logic_sim.hpp"

namespace enb::fault {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

// Exhaustively verifies that no class the prover pruned is detectable, and
// returns how many classes were actually checked (0 when nothing was
// pruned — callers asserting non-vacuity check the return).
std::uint64_t verify_pruned_classes_undetectable(const Circuit& circuit) {
  EXPECT_LE(circuit.num_inputs(), 20u) << circuit.name();
  const FaultUniverse universe = FaultUniverse::build(
      circuit, /*collapse=*/true, /*prune_untestable=*/true);
  std::vector<std::uint32_t> pruned;
  for (std::size_t c = 0; c < universe.num_classes(); ++c) {
    if (universe.class_untestable(c)) pruned.push_back(static_cast<std::uint32_t>(c));
  }
  EXPECT_EQ(pruned.size(), universe.num_untestable()) << circuit.name();
  if (pruned.empty()) return 0;

  ScalarFaultSim sim(circuit, universe);
  const std::size_t n = circuit.num_inputs();
  std::vector<bool> pattern(n);
  for (std::uint64_t assignment = 0; assignment < (std::uint64_t{1} << n);
       ++assignment) {
    for (std::size_t i = 0; i < n; ++i) {
      pattern[i] = ((assignment >> i) & 1u) != 0;
    }
    const std::vector<bool> expected = sim::eval_single(circuit, pattern);
    for (const std::uint32_t c : pruned) {
      const bool detected = sim.detect(c, pattern, expected);
      EXPECT_FALSE(detected)
          << circuit.name() << ": pruned class " << c
          << " detected by assignment " << assignment;
      if (detected) return pruned.size();  // one counterexample is enough
    }
  }
  return pruned.size();
}

// One circuit that fires every proof rule: a constant gate (rule 1), a cone
// never reaching an output (rule 2), and a live net whose only path out is
// blocked by a constant side input at the controlling value (rule 3).
Circuit rule_mix_circuit() {
  Circuit c("rule-mix");
  const NodeId x = c.add_input("x");
  const NodeId y = c.add_input("y");
  const NodeId zero = c.add_const(false);
  const NodeId live = c.add_gate(GateType::kNot, y);       // live, non-constant
  const NodeId gate = c.add_gate(GateType::kAnd, live, zero);  // constant 0
  const NodeId out = c.add_gate(GateType::kOr, gate, x);   // = x, observable
  c.add_gate(GateType::kAnd, x, y);                        // dead cone
  c.add_output(out, "out");
  return c;
}

// The soundness trap: m = OR(x, NOT(BUF(x))) is identically 1, but only by
// a probe-learned argument that depends on the very nets being faulted —
// e.g. BUF(x) stuck-at-1 makes m = x, which IS detectable. Blocking on m
// would wrongly prune the x cone.
Circuit probe_trap_circuit() {
  Circuit c("probe-trap");
  const NodeId x = c.add_input("x");
  const NodeId y = c.add_input("y");
  const NodeId buf = c.add_gate(GateType::kBuf, x);
  const NodeId inv = c.add_gate(GateType::kNot, buf);
  const NodeId m = c.add_gate(GateType::kOr, x, inv);  // == 1, probe-only
  const NodeId out = c.add_gate(GateType::kAnd, m, y);
  c.add_output(out, "out");
  return c;
}

TEST(UntestableProperty, RuleMixCircuitHitsEveryRule) {
  const Circuit circuit = rule_mix_circuit();
  const FaultUniverse universe = FaultUniverse::build(circuit);
  const UntestableReport report = find_untestable(circuit, universe);
  EXPECT_GT(report.constant_nets, 0u);
  EXPECT_GT(report.dead_nets, 0u);
  EXPECT_GT(report.blocked_nets, 0u);
  EXPECT_GT(report.untestable_classes, 0u);
  EXPECT_GT(report.untestable_sites, 0u);
}

TEST(UntestableProperty, ProbeTrapPrunesNothingUnsound) {
  // No constant gates, no dead nets: the prover must claim nothing at all
  // here, even though the probing tier can prove m constant.
  const Circuit circuit = probe_trap_circuit();
  const FaultUniverse universe = FaultUniverse::build(circuit);
  const UntestableReport report = find_untestable(circuit, universe);
  EXPECT_EQ(report.constant_nets, 0u);
  EXPECT_EQ(report.blocked_nets, 0u);
  EXPECT_EQ(report.untestable_classes, 0u);
}

TEST(UntestableProperty, ExhaustiveCheckOnHandBuiltCircuits) {
  EXPECT_GT(verify_pruned_classes_undetectable(rule_mix_circuit()), 0u);
  EXPECT_EQ(verify_pruned_classes_undetectable(probe_trap_circuit()), 0u);
}

TEST(UntestableProperty, ExhaustiveCheckOnSmallSuite) {
  for (const gen::BenchmarkSpec& spec : gen::small_suite()) {
    const Circuit circuit = spec.build();
    verify_pruned_classes_undetectable(circuit);
  }
}

TEST(UntestableProperty, ExhaustiveCheckOnRandomCircuits) {
  // Narrow output interfaces leave unused cones, so the dead-net rule fires
  // on most seeds; the check stays exhaustive at 8 inputs (256 patterns).
  std::uint64_t total_pruned = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::RandomCircuitOptions options;
    options.num_inputs = 8;
    options.num_gates = 48;
    options.num_outputs = 3;
    options.seed = seed;
    total_pruned +=
        verify_pruned_classes_undetectable(gen::random_circuit(options));
  }
  EXPECT_GT(total_pruned, 0u);  // the sweep must not be vacuous
}

// ---- campaign-layer pruning contract -------------------------------------

TEST(UntestableProperty, PrunedCampaignBitIdenticalOnTestableClasses) {
  const Circuit circuit = rule_mix_circuit();
  CampaignOptions base;
  base.exhaustive = true;
  base.shard_patterns = 2;  // 2 inputs -> 4 patterns in 2 shards
  const FaultCampaignResult plain =
      run_campaign(circuit, nullptr, base);

  CampaignOptions pruning = base;
  pruning.prune_untestable = true;
  const FaultCampaignResult pruned = run_campaign(circuit, nullptr, pruning);

  ASSERT_EQ(pruned.classes, plain.classes);
  EXPECT_GT(pruned.untestable, 0u);
  EXPECT_EQ(plain.untestable, 0u);
  EXPECT_EQ(pruned.sampled, plain.classes - pruned.untestable);
  // Every per-class record is unchanged: an untestable class reports "never
  // detected" whether it was simulated or pruned.
  EXPECT_EQ(pruned.detection_counts, plain.detection_counts);
  EXPECT_EQ(pruned.first_detect_pattern, plain.first_detect_pattern);
  EXPECT_EQ(pruned.first_detect_output, plain.first_detect_output);
  EXPECT_EQ(pruned.detected, plain.detected);
  // Only the denominator moves.
  EXPECT_DOUBLE_EQ(pruned.coverage,
                   static_cast<double>(pruned.detected) /
                       static_cast<double>(pruned.sampled));
  EXPECT_GE(pruned.coverage, plain.coverage);
  // Never more work than the full universe (equal when the testable set
  // still fills the same number of 64-lane blocks).
  EXPECT_LE(pruned.sim_passes, plain.sim_passes);
}

TEST(UntestableProperty, PrunedCampaignIndependentOfExecutionPolicy) {
  gen::RandomCircuitOptions spec;
  spec.num_inputs = 8;
  spec.num_gates = 48;
  spec.num_outputs = 3;
  spec.seed = 2;
  const Circuit circuit = gen::random_circuit(spec);

  CampaignOptions options;
  options.patterns = 48;
  options.shard_patterns = 16;
  options.prune_untestable = true;
  const FaultCampaignResult baseline = run_campaign(circuit, nullptr, options);
  EXPECT_GT(baseline.untestable, 0u);
  for (const LaneWidth width : all_lane_widths()) {
    CampaignOptions variant = options;
    variant.lanes = width;
    EXPECT_EQ(run_campaign(circuit, nullptr, variant), baseline)
        << "lanes=" << to_string(width);
    EXPECT_EQ(run_campaign(circuit, nullptr, variant,
                           exec::Parallelism::dedicated(8)),
              baseline)
        << "lanes=" << to_string(width) << " threads=8";
  }
  EXPECT_EQ(run_campaign(circuit, nullptr, options,
                         exec::Parallelism::serial()),
            baseline);
}

}  // namespace
}  // namespace enb::fault
