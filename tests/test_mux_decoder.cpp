#include "gen/mux_decoder.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

using netlist::Circuit;

TEST(MuxTree, SelectsCorrectInput) {
  const int sel_bits = 3;
  const Circuit c = mux_tree(sel_bits);
  const int n = 1 << sel_bits;
  for (int hot = 0; hot < n; ++hot) {
    for (int sel = 0; sel < n; ++sel) {
      std::vector<bool> in;
      for (int i = 0; i < n; ++i) in.push_back(i == hot);
      for (int i = 0; i < sel_bits; ++i) in.push_back(((sel >> i) & 1) != 0);
      const auto out = sim::eval_single(c, in);
      EXPECT_EQ(out[0], sel == hot) << "hot=" << hot << " sel=" << sel;
    }
  }
}

TEST(MuxTree, GateCount) {
  // 2^s - 1 muxes, 4 gates each.
  EXPECT_EQ(mux_tree(3).gate_count(), 7u * 4u);
}

TEST(Decoder, OneHotOutput) {
  const int bits = 3;
  const Circuit c = decoder(bits);
  for (int addr = 0; addr < (1 << bits); ++addr) {
    std::vector<bool> in;
    for (int i = 0; i < bits; ++i) in.push_back(((addr >> i) & 1) != 0);
    const auto out = sim::eval_single(c, in);
    for (int line = 0; line < (1 << bits); ++line) {
      EXPECT_EQ(out[static_cast<std::size_t>(line)], line == addr);
    }
  }
}

TEST(Decoder, EnableGatesAllLines) {
  const Circuit c = decoder(2, /*with_enable=*/true);
  std::vector<bool> in{true, false, false};  // addr=1, en=0
  auto out = sim::eval_single(c, in);
  for (bool line : out) EXPECT_FALSE(line);
  in[2] = true;  // enable
  out = sim::eval_single(c, in);
  EXPECT_TRUE(out[1]);
}

TEST(PriorityEncoder, LowestIndexWins) {
  const int n = 6;
  const Circuit c = priority_encoder(n);
  for (int req_mask = 1; req_mask < (1 << n); ++req_mask) {
    std::vector<bool> in;
    for (int i = 0; i < n; ++i) in.push_back(((req_mask >> i) & 1) != 0);
    const auto out = sim::eval_single(c, in);
    int expected = 0;
    while (((req_mask >> expected) & 1) == 0) ++expected;
    int got = 0;
    const int index_bits = static_cast<int>(out.size()) - 1;
    for (int b = 0; b < index_bits; ++b) {
      if (out[static_cast<std::size_t>(b)]) got |= 1 << b;
    }
    EXPECT_EQ(got, expected) << "mask=" << req_mask;
    EXPECT_TRUE(out.back());  // valid
  }
}

TEST(PriorityEncoder, NoRequestClearsValid) {
  const Circuit c = priority_encoder(4);
  const std::vector<bool> in(4, false);
  const auto out = sim::eval_single(c, in);
  EXPECT_FALSE(out.back());
}

TEST(MuxDecoder, RejectBadArgs) {
  EXPECT_THROW((void)mux_tree(0), std::invalid_argument);
  EXPECT_THROW((void)mux_tree(11), std::invalid_argument);
  EXPECT_THROW((void)decoder(0), std::invalid_argument);
  EXPECT_THROW((void)priority_encoder(1), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
