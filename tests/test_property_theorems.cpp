// Property sweeps over the theorem implementations: invariants that must
// hold across the whole (ε, δ, sw0, k) domain, checked on dense grids.
#include <gtest/gtest.h>

#include <cmath>

#include "core/activity_model.hpp"
#include "core/analyzer.hpp"
#include "core/channel.hpp"
#include "core/depth_bound.hpp"
#include "core/energy_bound.hpp"
#include "core/leakage_model.hpp"
#include "core/size_bound.hpp"

namespace enb::core {
namespace {

struct Point {
  double eps;
  double sw0;
};

class ActivityGridTest : public ::testing::TestWithParam<Point> {};

TEST_P(ActivityGridTest, RangeAndContraction) {
  const auto [eps, sw0] = GetParam();
  const double z = noisy_activity(sw0, eps);
  // Output stays in [min(sw0,offset.. ), ...] ⊂ [0, 1].
  EXPECT_GE(z, 0.0);
  EXPECT_LE(z, 1.0);
  // Never further from 1/2 than the input.
  EXPECT_LE(std::abs(z - 0.5), std::abs(sw0 - 0.5) + 1e-15);
  // Idempotent composition: applying the channel twice equals one channel of
  // composed epsilon.
  const double twice = noisy_activity(z, eps);
  const double composed = noisy_activity(sw0, compose_epsilon(eps, eps));
  EXPECT_NEAR(twice, composed, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ActivityGridTest,
    ::testing::Values(Point{0.001, 0.1}, Point{0.001, 0.5}, Point{0.001, 0.9},
                      Point{0.01, 0.2}, Point{0.01, 0.8}, Point{0.05, 0.05},
                      Point{0.1, 0.3}, Point{0.2, 0.7}, Point{0.3, 0.5},
                      Point{0.45, 0.25}, Point{0.49, 0.99}));

TEST(TheoremProperties, SizeBoundDominatesAcrossGrid) {
  // R >= 0 everywhere; R strictly increasing in s.
  for (double eps : {0.005, 0.02, 0.1, 0.3}) {
    for (double delta : {0.001, 0.01, 0.1}) {
      double prev_s = -1.0;
      for (double s : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        const double r = redundancy_lower_bound(s, 2, eps, delta);
        EXPECT_GE(r, 0.0);
        EXPECT_GT(r, prev_s) << "s=" << s;
        prev_s = r;
      }
    }
  }
}

TEST(TheoremProperties, FaninEffectCrossesOverWithEpsilon) {
  // At low error rates larger fanin relaxes the bound (Figure 3's curve
  // ordering); at high error rates the ordering inverts because omega
  // saturates toward 1/2 faster than the 1/k prefactor helps — the same
  // taper the paper notes for average power at large eps (Figure 6).
  for (double delta : {0.001, 0.01, 0.1}) {
    for (double k : {2.0, 3.0, 4.0}) {
      EXPECT_GT(redundancy_lower_bound(16, k, 0.01, delta),
                redundancy_lower_bound(16, k + 1, 0.01, delta))
          << "k=" << k;
      EXPECT_LT(redundancy_lower_bound(16, k, 0.3, delta),
                redundancy_lower_bound(16, k + 1, 0.3, delta))
          << "k=" << k;
    }
  }
}

TEST(TheoremProperties, EnergyFactorDecomposesEverywhere) {
  for (double eps : {0.001, 0.01, 0.1, 0.4}) {
    for (double sw0 : {0.1, 0.25, 0.5, 0.75}) {
      for (double lambda : {0.0, 0.3, 0.5, 1.0}) {
        EnergyModelOptions options;
        options.leakage_fraction = lambda;
        const EnergyBreakdown b =
            total_energy_factor(10, 21, sw0, 2, eps, 0.01, options);
        EXPECT_NEAR(b.total_factor,
                    (1 - lambda) * b.switching_factor +
                        lambda * b.leakage_factor,
                    1e-12);
        EXPECT_GE(b.size_factor, 1.0);
        // The weighted mix of activity and idle factors is >= the minimum of
        // the two, and the size factor only inflates it.
        EXPECT_GE(b.total_factor,
                  std::min(b.activity_factor, b.idle_factor) - 1e-12);
      }
    }
  }
}

TEST(TheoremProperties, ActivityIdleConvexCombination) {
  // sw*activity_ratio + (1-sw)*idle_ratio == 1 * (total probability):
  // sw_z + (1 - sw_z) == 1.
  for (double eps : {0.01, 0.1, 0.3}) {
    for (double sw0 : {0.05, 0.4, 0.6, 0.95}) {
      const double combined = sw0 * activity_ratio(sw0, eps) +
                              (1 - sw0) * idle_ratio(sw0, eps);
      EXPECT_NEAR(combined, 1.0, 1e-12);
    }
  }
}

TEST(TheoremProperties, LeakageRatioBounded) {
  // The ratio lies strictly between the two extreme activity scalings.
  for (double eps : {0.01, 0.1, 0.3, 0.49}) {
    for (double sw0 : {0.05, 0.2, 0.5, 0.8, 0.95}) {
      const double r = leakage_ratio(sw0, eps);
      EXPECT_GT(r, 0.0);
      if (sw0 < 0.5) {
        EXPECT_LE(r, 1.0 + 1e-12);
      } else {
        EXPECT_GE(r, 1.0 - 1e-12);
      }
    }
  }
}

TEST(TheoremProperties, DepthAndDelayCoupling) {
  // Where feasible, depth bound at n inputs and the normalized factor obey
  // depth_bound == normalized_factor * log2(n*Delta)/log2(k).
  for (double k : {2.0, 3.0, 4.0}) {
    for (double eps : {0.001, 0.01, 0.05}) {
      if (!depth_feasible(eps, k)) continue;
      for (int n : {4, 10, 32}) {
        const double delta = 0.01;
        const double direct = depth_lower_bound(n, k, eps, delta);
        const double via_factor =
            delay_factor_lower_bound(k, eps) *
            std::log2(n * delta_capacity(delta)) / std::log2(k);
        EXPECT_NEAR(direct, via_factor, 1e-9) << "k=" << k << " eps=" << eps;
      }
    }
  }
}

TEST(TheoremProperties, AnalyzerMonotoneInEpsilonDenseGrid) {
  const CircuitProfile p = make_profile("sweep", 12, 40, 0.35, 2.5, 12);
  const auto grid = log_grid(1e-4, 0.45, 40);
  double prev_energy = 0.0;
  double prev_redundancy = -1.0;
  for (double eps : grid) {
    const BoundReport r = analyze(p, eps, 0.01);
    EXPECT_GE(r.energy.total_factor, prev_energy - 1e-12) << "eps=" << eps;
    EXPECT_GE(r.redundancy_gates, prev_redundancy) << "eps=" << eps;
    prev_energy = r.energy.total_factor;
    prev_redundancy = r.redundancy_gates;
  }
}

TEST(TheoremProperties, FeasibilityEdgeMatchesClosedForm) {
  for (double k : {2.0, 3.0, 4.0, 5.0, 8.0}) {
    const double edge = max_feasible_epsilon(k);
    EXPECT_TRUE(depth_feasible(edge - 1e-9, k));
    EXPECT_FALSE(depth_feasible(edge + 1e-9, k));
  }
}

}  // namespace
}  // namespace enb::core
