// Edge cases of the enbound CLI argument parser: a trailing value-taking
// flag must not read past the end of argv (the seed binary dereferenced
// argv[argc], i.e. nullptr), and malformed values must name the offending
// flag instead of crashing out of std::stod.
#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace enb::cli {
namespace {

TEST(CliArgs, HappyPathFillsEveryField) {
  const Args args = parse_args(
      {"sweep", "adder.bench", "--eps-lo", "0.002", "--eps-hi", "0.3",
       "--points", "7", "--delta", "0.05", "--map", "4", "--csv", "out.csv",
       "--eps", "0.02", "--leakage", "0.25", "--couple-leakage", "--threads",
       "8", "--json", "out.json", "-o", "out.bench", "--stream"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.stream);
  EXPECT_EQ(args.positional, (std::vector<std::string>{"sweep", "adder.bench"}));
  EXPECT_DOUBLE_EQ(args.eps_lo, 0.002);
  EXPECT_DOUBLE_EQ(args.eps_hi, 0.3);
  EXPECT_EQ(args.points, 7);
  EXPECT_DOUBLE_EQ(args.delta, 0.05);
  EXPECT_EQ(args.map_fanin, 4);
  EXPECT_EQ(args.csv, "out.csv");
  EXPECT_DOUBLE_EQ(args.eps, 0.02);
  EXPECT_DOUBLE_EQ(args.leakage, 0.25);
  EXPECT_TRUE(args.couple_leakage);
  EXPECT_EQ(args.threads, 8u);
  EXPECT_EQ(args.json, "out.json");
  EXPECT_EQ(args.out, "out.bench");
}

TEST(CliArgs, StreamDefaultsOff) {
  const Args args = parse_args({"batch", "jobs.manifest"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_FALSE(args.stream);
}

TEST(CliArgs, TrailingValueFlagReportsInsteadOfOverreading) {
  for (const char* flag :
       {"--eps", "--delta", "--leakage", "--eps-lo", "--eps-hi", "--map",
        "--points", "--threads", "-o", "--csv", "--json"}) {
    const Args args = parse_args({"analyze", "c.bench", flag});
    EXPECT_FALSE(args.ok()) << flag;
    EXPECT_NE(args.error.find(flag), std::string::npos)
        << "error should name the offending flag: " << args.error;
    EXPECT_NE(args.error.find("requires a value"), std::string::npos)
        << args.error;
  }
}

TEST(CliArgs, NonNumericValueNamesFlagAndValue) {
  const Args args = parse_args({"analyze", "c.bench", "--eps", "abc"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--eps"), std::string::npos) << args.error;
  EXPECT_NE(args.error.find("abc"), std::string::npos) << args.error;
}

TEST(CliArgs, PartialNumericValueRejected) {
  // "0.1x" must not silently parse as 0.1.
  const Args args = parse_args({"analyze", "c.bench", "--delta", "0.1x"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--delta"), std::string::npos) << args.error;
}

TEST(CliArgs, NonIntegerCountRejected) {
  const Args points = parse_args({"sweep", "c.bench", "--points", "3.5"});
  EXPECT_FALSE(points.ok());
  const Args map = parse_args({"analyze", "c.bench", "--map", "two"});
  EXPECT_FALSE(map.ok());
}

TEST(CliArgs, NegativeThreadsRejected) {
  const Args args = parse_args({"batch", "jobs.txt", "--threads", "-2"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--threads"), std::string::npos) << args.error;
}

TEST(CliArgs, UnknownOptionRejected) {
  const Args args = parse_args({"analyze", "c.bench", "--epsilon", "0.1"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--epsilon"), std::string::npos) << args.error;
}

TEST(CliArgs, EmptyArgvIsOk) {
  const Args args = parse_args({});
  EXPECT_TRUE(args.ok());
  EXPECT_TRUE(args.positional.empty());
}

}  // namespace
}  // namespace enb::cli
