// Edge cases of the enbound CLI argument parser: a trailing value-taking
// flag must not read past the end of argv (the seed binary dereferenced
// argv[argc], i.e. nullptr), and malformed values must name the offending
// flag instead of crashing out of std::stod.
#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace enb::cli {
namespace {

TEST(CliArgs, HappyPathFillsEveryField) {
  const Args args = parse_args(
      {"sweep", "adder.bench", "--eps-lo", "0.002", "--eps-hi", "0.3",
       "--points", "7", "--delta", "0.05", "--map", "4", "--csv", "out.csv",
       "--eps", "0.02", "--leakage", "0.25", "--couple-leakage", "--threads",
       "8", "--json", "out.json", "-o", "out.bench", "--stream"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.stream);
  EXPECT_EQ(args.positional, (std::vector<std::string>{"sweep", "adder.bench"}));
  EXPECT_DOUBLE_EQ(args.eps_lo, 0.002);
  EXPECT_DOUBLE_EQ(args.eps_hi, 0.3);
  EXPECT_EQ(args.points, 7);
  EXPECT_DOUBLE_EQ(args.delta, 0.05);
  EXPECT_EQ(args.map_fanin, 4);
  EXPECT_EQ(args.csv, "out.csv");
  EXPECT_DOUBLE_EQ(args.eps, 0.02);
  EXPECT_DOUBLE_EQ(args.leakage, 0.25);
  EXPECT_TRUE(args.couple_leakage);
  EXPECT_EQ(args.threads, 8u);
  EXPECT_EQ(args.json, "out.json");
  EXPECT_EQ(args.out, "out.bench");
}

TEST(CliArgs, StreamDefaultsOff) {
  const Args args = parse_args({"batch", "jobs.manifest"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_FALSE(args.stream);
}

TEST(CliArgs, TraceTakesAPath) {
  const Args defaults = parse_args({"batch", "jobs.manifest"});
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_TRUE(defaults.trace.empty());

  const Args args =
      parse_args({"batch", "jobs.manifest", "--trace", "run.trace.json"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.trace, "run.trace.json");

  const Args trailing = parse_args({"batch", "jobs.manifest", "--trace"});
  EXPECT_FALSE(trailing.ok());
  EXPECT_NE(trailing.error.find("--trace"), std::string::npos);
}

TEST(CliArgs, FaultCampaignScaleFlagsParse) {
  const Args defaults = parse_args({"faultsim", "rca8"});
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_FALSE(defaults.drop);
  EXPECT_EQ(defaults.lanes, 64u);
  EXPECT_EQ(defaults.sample, 0u);

  const Args args = parse_args(
      {"faultsim", "rca8", "--drop", "--lanes", "256", "--sample", "100"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.drop);
  EXPECT_EQ(args.lanes, 256u);
  EXPECT_EQ(args.sample, 100u);

  // Value validation (64/128/256/512) is the command's job; the parser only
  // rejects non-numeric input.
  const Args bad = parse_args({"faultsim", "rca8", "--lanes", "wide"});
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("--lanes"), std::string::npos);
}

TEST(CliArgs, TrailingValueFlagReportsInsteadOfOverreading) {
  for (const char* flag :
       {"--eps", "--delta", "--leakage", "--eps-lo", "--eps-hi", "--map",
        "--points", "--threads", "-o", "--csv", "--json"}) {
    const Args args = parse_args({"analyze", "c.bench", flag});
    EXPECT_FALSE(args.ok()) << flag;
    EXPECT_NE(args.error.find(flag), std::string::npos)
        << "error should name the offending flag: " << args.error;
    EXPECT_NE(args.error.find("requires a value"), std::string::npos)
        << args.error;
  }
}

TEST(CliArgs, NonNumericValueNamesFlagAndValue) {
  const Args args = parse_args({"analyze", "c.bench", "--eps", "abc"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--eps"), std::string::npos) << args.error;
  EXPECT_NE(args.error.find("abc"), std::string::npos) << args.error;
}

TEST(CliArgs, PartialNumericValueRejected) {
  // "0.1x" must not silently parse as 0.1.
  const Args args = parse_args({"analyze", "c.bench", "--delta", "0.1x"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--delta"), std::string::npos) << args.error;
}

TEST(CliArgs, NonIntegerCountRejected) {
  const Args points = parse_args({"sweep", "c.bench", "--points", "3.5"});
  EXPECT_FALSE(points.ok());
  const Args map = parse_args({"analyze", "c.bench", "--map", "two"});
  EXPECT_FALSE(map.ok());
}

TEST(CliArgs, NegativeThreadsRejected) {
  const Args args = parse_args({"batch", "jobs.txt", "--threads", "-2"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--threads"), std::string::npos) << args.error;
}

TEST(CliArgs, UnknownOptionRejected) {
  const Args args = parse_args({"analyze", "c.bench", "--epsilon", "0.1"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--epsilon"), std::string::npos) << args.error;
}

TEST(CliArgs, EmptyArgvIsOk) {
  const Args args = parse_args({});
  EXPECT_TRUE(args.ok());
  EXPECT_TRUE(args.positional.empty());
}

TEST(CliArgs, ServeFlagsParse) {
  const Args args = parse_args({"serve", "--socket", "/tmp/enb.sock",
                                "--max-handles", "8", "--max-cache", "128",
                                "--threads", "2"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.socket, "/tmp/enb.sock");
  EXPECT_EQ(args.max_handles, 8);
  EXPECT_EQ(args.max_cache, 128);
  EXPECT_EQ(args.threads, 2u);
}

TEST(CliArgs, ServeCapacitiesDefaultAndRejectNonPositive) {
  const Args defaults = parse_args({"serve", "--socket", "s.sock"});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.max_handles, 64);
  EXPECT_EQ(defaults.max_cache, 4096);

  const Args handles = parse_args({"serve", "--max-handles", "0"});
  ASSERT_FALSE(handles.ok());
  EXPECT_NE(handles.error.find("--max-handles"), std::string::npos)
      << handles.error;
  const Args cache = parse_args({"serve", "--max-cache", "-5"});
  ASSERT_FALSE(cache.ok());
  EXPECT_NE(cache.error.find("--max-cache"), std::string::npos)
      << cache.error;
}

TEST(CliArgs, FaultsimFlagsParseAndDefault) {
  const Args defaults = parse_args({"faultsim", "c17"});
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_EQ(defaults.patterns, 256u);
  EXPECT_FALSE(defaults.exhaustive);
  EXPECT_EQ(defaults.seed, 0xFA17u);
  EXPECT_EQ(defaults.bundle_width, 1);
  EXPECT_FALSE(defaults.no_collapse);
  EXPECT_FALSE(defaults.check_scalar);
  EXPECT_TRUE(defaults.golden.empty());
  EXPECT_TRUE(defaults.ans.empty());

  const Args args = parse_args(
      {"faultsim", "nmr.bench", "--golden", "base.bench", "--patterns", "500",
       "--seed", "42", "--bundle-width", "5", "--exhaustive", "--no-collapse",
       "--check-scalar", "--ans", "out.ans"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.patterns, 500u);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.bundle_width, 5);
  EXPECT_TRUE(args.exhaustive);
  EXPECT_TRUE(args.no_collapse);
  EXPECT_TRUE(args.check_scalar);
  EXPECT_EQ(args.golden, "base.bench");
  EXPECT_EQ(args.ans, "out.ans");
}

TEST(CliArgs, FaultsimNumericFlagsRejectGarbageAndTrailing) {
  const Args bad = parse_args({"faultsim", "c17", "--patterns", "many"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("--patterns"), std::string::npos) << bad.error;
  const Args negative = parse_args({"faultsim", "c17", "--seed", "-3"});
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.error.find("--seed"), std::string::npos)
      << negative.error;
  const Args trailing = parse_args({"faultsim", "c17", "--ans"});
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.error.find("--ans"), std::string::npos)
      << trailing.error;
}

TEST(CliArgs, TrailingSocketFlagRejected) {
  const Args args = parse_args({"client", "--socket"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("--socket"), std::string::npos) << args.error;
}

TEST(CliArgs, ClientVerbTokensStayPositional) {
  // Manifest-style key=value tokens must pass through as positionals for
  // the client analyze verb.
  const Args args = parse_args({"client", "--socket", "s.sock", "analyze",
                                "mult4", "kind=energy-bound", "eps=0.02"});
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.positional.size(), 5u);
  EXPECT_EQ(args.positional[2], "mult4");
  EXPECT_EQ(args.positional[3], "kind=energy-bound");
  EXPECT_EQ(args.positional[4], "eps=0.02");
}

TEST(CliArgs, LintFlagsParse) {
  const Args args =
      parse_args({"lint", "c17.bench", "--json", "lint.json"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.positional,
            (std::vector<std::string>{"lint", "c17.bench"}));
  EXPECT_EQ(args.json, "lint.json");

  const Args trailing = parse_args({"lint", "c17.bench", "--json"});
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.error.find("--json"), std::string::npos)
      << trailing.error;
}

TEST(CliArgs, HardenFlagsParseAndDefault) {
  const Args defaults = parse_args({"harden", "c17"});
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_TRUE(defaults.style.empty());
  EXPECT_TRUE(defaults.granularity.empty());
  EXPECT_EQ(defaults.top_k, 0u);
  EXPECT_TRUE(defaults.emit.empty());

  const Args args = parse_args({"harden", "c17", "--style", "selective",
                                "--granularity", "cone", "--top-k", "2",
                                "--emit", "winners"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.style, "selective");
  EXPECT_EQ(args.granularity, "cone");
  EXPECT_EQ(args.top_k, 2u);
  EXPECT_EQ(args.emit, "winners");

  // Style/granularity value validation is the command's job; the parser only
  // rejects missing and non-numeric values.
  for (const char* flag : {"--style", "--granularity", "--top-k", "--emit"}) {
    const Args trailing = parse_args({"harden", "c17", flag});
    EXPECT_FALSE(trailing.ok()) << flag;
    EXPECT_NE(trailing.error.find(flag), std::string::npos) << trailing.error;
  }
  const Args bad = parse_args({"harden", "c17", "--top-k", "many"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("--top-k"), std::string::npos) << bad.error;
}

TEST(CliArgs, KnownCommandVocabularyCoversEverySubcommand) {
  for (const char* command :
       {"profile", "analyze", "sweep", "batch", "faultsim", "cec", "lint",
        "harden", "serve", "client", "gen", "list"}) {
    EXPECT_TRUE(is_known_command(command)) << command;
  }
  EXPECT_FALSE(is_known_command("frobnicate"));
  EXPECT_FALSE(is_known_command(""));
  EXPECT_FALSE(is_known_command("LINT"));  // commands are case-sensitive
  EXPECT_EQ(known_commands().size(), 12u);
}

}  // namespace
}  // namespace enb::cli
