#include "sim/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit parity(int n) {
  Circuit c;
  NodeId acc = c.add_input();
  for (int i = 1; i < n; ++i) acc = c.add_gate(GateType::kXor, acc, c.add_input());
  c.add_output(acc);
  return c;
}

Circuit and_gate(int n) {
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < n; ++i) ins.push_back(c.add_input());
  c.add_output(c.add_gate(GateType::kAnd, ins));
  return c;
}

TEST(Sensitivity, ParityIsFullySensitive) {
  for (int n : {2, 5, 10}) {
    const SensitivityResult r = compute_sensitivity(parity(n));
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.sensitivity, n) << "n=" << n;
    // Every input flip always changes parity: influence 1 each.
    for (double inf : r.influence) EXPECT_DOUBLE_EQ(inf, 1.0);
    EXPECT_NEAR(r.total_influence, n, 1e-9);
  }
}

TEST(Sensitivity, AndGateSensitivity) {
  // s(AND_n) = n (at the all-ones point); influence per input = 2^-(n-1).
  for (int n : {2, 4, 6}) {
    const SensitivityResult r = compute_sensitivity(and_gate(n));
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.sensitivity, n) << "n=" << n;
    for (double inf : r.influence) {
      EXPECT_NEAR(inf, std::pow(2.0, -(n - 1)), 1e-9);
    }
  }
}

TEST(Sensitivity, ConstantFunctionHasZeroSensitivity) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kXor, a, a));  // always 0
  const SensitivityResult r = compute_sensitivity(c);
  EXPECT_EQ(r.sensitivity, 0);
  EXPECT_DOUBLE_EQ(r.influence[0], 0.0);
}

TEST(Sensitivity, MultiOutputUsesAnyOutputChange) {
  // Outputs {a AND b, a OR b}: flipping either input always changes one of
  // the two outputs, so s = 2.
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  c.add_output(c.add_gate(GateType::kOr, a, b));
  const SensitivityResult r = compute_sensitivity(c);
  EXPECT_EQ(r.sensitivity, 2);
}

TEST(Sensitivity, SampledModeLowerBoundsParity) {
  // Force sampling by setting max_exact_inputs below n.
  SensitivityOptions options;
  options.max_exact_inputs = 4;
  options.sample_words = 64;
  const SensitivityResult r = compute_sensitivity(parity(12), options);
  EXPECT_FALSE(r.exact);
  // Parity is everywhere fully sensitive, so even sampling finds s = n.
  EXPECT_EQ(r.sensitivity, 12);
}

TEST(Sensitivity, SampledModeNeverExceedsExact) {
  SensitivityOptions sampled;
  sampled.max_exact_inputs = 2;
  sampled.sample_words = 32;
  const Circuit c = and_gate(8);
  const SensitivityResult lower = compute_sensitivity(c, sampled);
  const SensitivityResult exact = compute_sensitivity(c);
  EXPECT_LE(lower.sensitivity, exact.sensitivity);
}

TEST(Sensitivity, NoInputsGracefully) {
  Circuit c;
  c.add_output(c.add_const(true));
  const SensitivityResult r = compute_sensitivity(c);
  EXPECT_EQ(r.sensitivity, 0);
  EXPECT_TRUE(r.exact);
}

TEST(Sensitivity, MuxSensitivity) {
  // mux(s, a, b) = s ? a : b. At (s,a,b) with a != b every variable matters
  // for some assignment; max sensitivity is 2 (e.g. s=0,a=1,b=0: flipping s
  // or b changes output; flipping a does not).
  Circuit c;
  const NodeId s = c.add_input();
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId sa = c.add_gate(GateType::kAnd, s, a);
  const NodeId ns = c.add_gate(GateType::kNot, s);
  const NodeId nsb = c.add_gate(GateType::kAnd, ns, b);
  c.add_output(c.add_gate(GateType::kOr, sa, nsb));
  const SensitivityResult r = compute_sensitivity(c);
  EXPECT_EQ(r.sensitivity, 2);
}

TEST(Sensitivity, ZeroSampleBudgetRejectedOnSampledRoute) {
  // Sampled sweep (forced via max_exact_inputs) with sample_words == 0 would
  // divide 0/0 into NaN influence; it must throw instead. The exact sweep
  // ignores sample_words entirely.
  const Circuit c = parity(10);
  SensitivityOptions options;
  options.max_exact_inputs = 4;
  options.sample_words = 0;
  EXPECT_THROW((void)compute_sensitivity(c, options), std::invalid_argument);
  options.max_exact_inputs = 22;  // exact route: fine
  const SensitivityResult r = compute_sensitivity(c, options);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.sensitivity, 10);
}

}  // namespace
}  // namespace enb::sim
