#include <gtest/gtest.h>

#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "sim/reliability.hpp"

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(WorstCase, AtLeastAverage) {
  const Circuit c = gen::ripple_carry_adder(4);
  const double eps = 0.02;
  WorstCaseOptions options;
  options.num_inputs = 48;
  options.trials_per_input = 1 << 11;
  const WorstCaseResult wc =
      estimate_worst_case_reliability(c, c, eps, options);
  EXPECT_GE(wc.worst.delta_hat, wc.average_delta - 1e-12);
  EXPECT_EQ(wc.worst_input.size(), c.num_inputs());
}

TEST(WorstCase, AverageTracksInputAveragedEstimator) {
  const Circuit c = gen::c17();
  const double eps = 0.02;
  WorstCaseOptions options;
  options.num_inputs = 128;
  options.trials_per_input = 1 << 11;
  const WorstCaseResult wc =
      estimate_worst_case_reliability(c, c, eps, options);
  ReliabilityOptions avg_options;
  avg_options.trials = 1 << 16;
  const ReliabilityResult avg = estimate_reliability(c, eps, avg_options);
  EXPECT_NEAR(wc.average_delta, avg.delta_hat, 0.01);
}

TEST(WorstCase, DetectsFragileInput) {
  // y = AND(x1..x8) as a chain: an input whose suffix has t trailing ones
  // exposes a cascade of t+1 error channels, so delta = compose_{t+1}(eps).
  // Long-suffix inputs (delta up to compose_8 ~ 0.26 at eps = 0.05) are far
  // more fragile than the random-input average (~0.09), giving a true
  // worst/average ratio near 2.9 — comfortably above the asserted 2x.
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(c.add_input());
  NodeId acc = ins[0];
  for (int i = 1; i < 8; ++i) acc = c.add_gate(GateType::kAnd, acc, ins[i]);
  c.add_output(acc);

  WorstCaseOptions options;
  options.num_inputs = 256;  // long-suffix assignments sampled many times
  options.trials_per_input = 1 << 12;
  const WorstCaseResult wc =
      estimate_worst_case_reliability(c, c, 0.05, options);
  // Worst case should be several times the average.
  EXPECT_GT(wc.worst.delta_hat, 2.0 * wc.average_delta);
}

TEST(WorstCase, ZeroNoiseZeroEverywhere) {
  const Circuit c = gen::c17();
  const WorstCaseResult wc = estimate_worst_case_reliability(c, c, 0.0);
  EXPECT_EQ(wc.worst.failures, 0u);
  EXPECT_EQ(wc.average_delta, 0.0);
}

TEST(WorstCase, Validation) {
  const Circuit c = gen::c17();
  WorstCaseOptions options;
  options.num_inputs = 0;
  EXPECT_THROW((void)estimate_worst_case_reliability(c, c, 0.1, options),
               std::invalid_argument);
  Circuit other;
  other.add_output(other.add_input());
  EXPECT_THROW((void)estimate_worst_case_reliability(other, c, 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::sim
