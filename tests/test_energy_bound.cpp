#include "core/energy_bound.hpp"

#include <gtest/gtest.h>

#include "core/activity_model.hpp"
#include "core/size_bound.hpp"

namespace enb::core {
namespace {

TEST(EnergyBound, Corollary2Composition) {
  // switching factor == size factor * activity factor.
  const double s = 10, S0 = 21, sw0 = 0.3, k = 2, eps = 0.01, delta = 0.01;
  const double expected = size_factor_lower_bound(s, S0, k, eps, delta) *
                          activity_ratio(sw0, eps);
  EXPECT_NEAR(switching_energy_factor(s, S0, sw0, k, eps, delta), expected,
              1e-12);
}

TEST(EnergyBound, CleanChannelIsUnity) {
  EXPECT_DOUBLE_EQ(switching_energy_factor(10, 21, 0.3, 2, 0.0, 0.01), 1.0);
}

TEST(EnergyBound, QuietCircuitsPayMore) {
  // Lower sw0 -> larger activity blow-up (the 2e(1-e)/sw0 term).
  const double busy = switching_energy_factor(10, 21, 0.5, 2, 0.01, 0.01);
  const double quiet = switching_energy_factor(10, 21, 0.05, 2, 0.01, 0.01);
  EXPECT_GT(quiet, busy);
}

TEST(EnergyBound, TotalSplitsByLambda) {
  const double s = 10, S0 = 21, sw0 = 0.3, k = 2, eps = 0.05, delta = 0.01;
  EnergyModelOptions options;
  options.leakage_fraction = 0.5;
  const EnergyBreakdown b =
      total_energy_factor(s, S0, sw0, k, eps, delta, options);
  EXPECT_NEAR(b.total_factor,
              0.5 * b.switching_factor + 0.5 * b.leakage_factor, 1e-12);
  EXPECT_NEAR(b.switching_factor, b.size_factor * b.activity_factor, 1e-12);
  EXPECT_NEAR(b.leakage_factor, b.size_factor * b.idle_factor, 1e-12);
}

TEST(EnergyBound, PureSwitchingWhenLambdaZero) {
  EnergyModelOptions options;
  options.leakage_fraction = 0.0;
  const EnergyBreakdown b =
      total_energy_factor(10, 21, 0.3, 2, 0.05, 0.01, options);
  EXPECT_DOUBLE_EQ(b.total_factor, b.switching_factor);
}

TEST(EnergyBound, PureLeakageWhenLambdaOne) {
  EnergyModelOptions options;
  options.leakage_fraction = 1.0;
  const EnergyBreakdown b =
      total_energy_factor(10, 21, 0.3, 2, 0.05, 0.01, options);
  EXPECT_DOUBLE_EQ(b.total_factor, b.leakage_factor);
}

TEST(EnergyBound, DelayCouplingInflatesLeakage) {
  EnergyModelOptions coupled;
  coupled.couple_leakage_to_delay = true;
  EnergyModelOptions plain;
  const double delay_factor = 1.5;
  const EnergyBreakdown with_coupling = total_energy_factor(
      10, 21, 0.3, 2, 0.05, 0.01, coupled, delay_factor);
  const EnergyBreakdown without = total_energy_factor(
      10, 21, 0.3, 2, 0.05, 0.01, plain, delay_factor);
  EXPECT_NEAR(with_coupling.leakage_factor,
              without.leakage_factor * delay_factor, 1e-12);
  EXPECT_GT(with_coupling.total_factor, without.total_factor);
}

TEST(EnergyBound, AtFixedPointActivityOnlySizeMatters) {
  // sw0 = 0.5: activity and idle factors are 1; total == size factor.
  const EnergyBreakdown b = total_energy_factor(10, 21, 0.5, 2, 0.05, 0.01);
  EXPECT_NEAR(b.activity_factor, 1.0, 1e-12);
  EXPECT_NEAR(b.idle_factor, 1.0, 1e-12);
  EXPECT_NEAR(b.total_factor, b.size_factor, 1e-12);
}

TEST(EnergyBound, HeadlineClaimShape) {
  // Abstract: "99% error resilience ... at least 40% more energy if
  // individual gates fail independently with probability of 1%".
  // A high-sensitivity-to-size circuit (AND4 as a 3-gate tree: s=4, S0=3)
  // crosses the 40% threshold at eps=0.01, delta=0.01.
  const double factor = switching_energy_factor(4, 3, 0.3, 2, 0.01, 0.01);
  EXPECT_GE(factor, 1.4);
}

TEST(EnergyBound, MonotoneInEpsilon) {
  double prev = 1.0;
  for (double eps : {0.001, 0.005, 0.01, 0.05, 0.1, 0.2}) {
    const EnergyBreakdown b = total_energy_factor(10, 21, 0.3, 2, eps, 0.01);
    EXPECT_GT(b.total_factor, prev) << "eps=" << eps;
    prev = b.total_factor;
  }
}

TEST(EnergyBound, DomainChecks) {
  EnergyModelOptions options;
  options.leakage_fraction = 1.5;
  EXPECT_THROW((void)total_energy_factor(10, 21, 0.3, 2, 0.05, 0.01, options),
               std::invalid_argument);
  EXPECT_THROW(
      (void)total_energy_factor(10, 21, 0.3, 2, 0.05, 0.01, {}, 0.5),
      std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
