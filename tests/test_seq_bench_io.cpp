#include "seq/seq_bench_io.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "seq/seq_gen.hpp"
#include "seq/seq_sim.hpp"

namespace enb::seq {
namespace {

constexpr const char* kToggle = R"(# toggle flip-flop with enable
INPUT(en)
OUTPUT(q)
q = DFF(next)
next = XOR(q, en)
)";

TEST(SeqBenchIo, ParsesDff) {
  const SeqCircuit seq = read_seq_bench_string(kToggle, "toggle");
  EXPECT_EQ(seq.num_latches(), 1u);
  EXPECT_EQ(seq.num_free_inputs(), 1u);
  EXPECT_EQ(seq.core().num_outputs(), 1u);
  EXPECT_EQ(seq.latches()[0].name, "q");
}

TEST(SeqBenchIo, ParsedMachineBehaves) {
  const SeqCircuit seq = read_seq_bench_string(kToggle);
  SeqSim sim(seq);
  const std::vector<sim::Word> enable{sim::kAllOnes};
  const std::vector<sim::Word> hold{0};
  EXPECT_EQ(sim.step(enable)[0] & 1U, 0u);  // q before first toggle
  EXPECT_EQ(sim.step(hold)[0] & 1U, 1u);    // toggled once, now holding
  EXPECT_EQ(sim.step(enable)[0] & 1U, 1u);
  EXPECT_EQ(sim.step(hold)[0] & 1U, 0u);    // toggled back
}

TEST(SeqBenchIo, MultipleDffs) {
  const SeqCircuit seq = read_seq_bench_string(R"(
INPUT(d)
OUTPUT(q1)
q0 = DFF(b0)
q1 = DFF(b1)
b0 = BUF(d)
b1 = BUF(q0)
)");
  EXPECT_EQ(seq.num_latches(), 2u);
  // Two-stage delay line.
  SeqSim sim(seq);
  const std::vector<sim::Word> one{1};
  const std::vector<sim::Word> zero{0};
  EXPECT_EQ(sim.step(one)[0] & 1U, 0u);
  EXPECT_EQ(sim.step(zero)[0] & 1U, 0u);
  EXPECT_EQ(sim.step(zero)[0] & 1U, 1u);  // pulse arrives after 2 cycles
  EXPECT_EQ(sim.step(zero)[0] & 1U, 0u);
}

TEST(SeqBenchIo, CaseInsensitiveDff) {
  const SeqCircuit seq = read_seq_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = dff(n)\nn = NOT(q)\n");
  EXPECT_EQ(seq.num_latches(), 1u);
}

TEST(SeqBenchIo, RejectsMalformedDff) {
  EXPECT_THROW((void)read_seq_bench_string("q = DFF(\n"),
               netlist::BenchParseError);
  EXPECT_THROW((void)read_seq_bench_string("q = DFF()\nOUTPUT(q)\n"),
               netlist::BenchParseError);
}

TEST(SeqBenchIo, RoundTripGeneratedMachines) {
  for (const SeqCircuit& machine :
       {lfsr_maximal(4), counter(3), shift_register(4)}) {
    const std::string text = write_seq_bench_string(machine);
    const SeqCircuit reread = read_seq_bench_string(text, machine.name());
    ASSERT_EQ(reread.num_latches(), machine.num_latches()) << machine.name();
    ASSERT_EQ(reread.num_free_inputs(), machine.num_free_inputs());

    // Behavioural equivalence over a pseudo-random stimulus. Note: .bench
    // has no initial-value syntax, so compare from the all-zero state; for
    // the LFSR force both into the same nonzero state via its latches.
    SeqSim sim_a(machine);
    SeqSim sim_b(reread);
    sim::Xoshiro256 rng(3);
    for (int t = 0; t < 12; ++t) {
      std::vector<sim::Word> in(machine.num_free_inputs());
      for (auto& w : in) w = rng.next();
      if (t == 0 && machine.num_free_inputs() == 0) {
        // state-only machines: compare from cycle 1 on equal footing below.
      }
      const auto a = sim_a.step(in);
      const auto b = sim_b.step(in);
      if (machine.name().rfind("lfsr", 0) == 0) continue;  // init differs
      EXPECT_EQ(a, b) << machine.name() << " cycle " << t;
    }
  }
}

TEST(SeqBenchIo, WriterEmitsDffLines) {
  const std::string text = write_seq_bench_string(counter(2));
  EXPECT_NE(text.find("= DFF("), std::string::npos);
  EXPECT_NE(text.find("INPUT(en)"), std::string::npos);
}

}  // namespace
}  // namespace enb::seq
