#include "bdd/bdd_analysis.hpp"

#include <gtest/gtest.h>

#include "sim/sensitivity.hpp"

namespace enb::bdd {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit and_or_circuit() {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kOr, g1, d);
  c.add_output(g2);
  return c;
}

TEST(BddAnalysis, ExactProbabilities) {
  const Circuit c = and_or_circuit();
  const std::vector<double> p = exact_signal_probabilities(c);
  // p(AND) = 0.25; p(OR) = 0.25 + 0.5 - 0.125 = 0.625.
  EXPECT_NEAR(p[3], 0.25, 1e-12);
  EXPECT_NEAR(p[4], 0.625, 1e-12);
}

TEST(BddAnalysis, BiasedInputProbability) {
  const Circuit c = and_or_circuit();
  BddAnalysisOptions options;
  options.input_one_probability = 0.8;
  const std::vector<double> p = exact_signal_probabilities(c, options);
  EXPECT_NEAR(p[3], 0.64, 1e-12);
  EXPECT_NEAR(p[4], 0.64 + 0.8 - 0.64 * 0.8, 1e-12);
}

TEST(BddAnalysis, ActivityAgreesWithIdentity) {
  const Circuit c = and_or_circuit();
  const sim::ActivityResult r = exact_activity_bdd(c);
  EXPECT_NEAR(r.toggle_rate[3], 2 * 0.25 * 0.75, 1e-12);
  EXPECT_NEAR(r.toggle_rate[4], 2 * 0.625 * 0.375, 1e-12);
  EXPECT_NEAR(r.avg_gate_toggle_rate,
              (2 * 0.25 * 0.75 + 2 * 0.625 * 0.375) / 2.0, 1e-12);
}

TEST(BddAnalysis, InfluencesMatchSimulation) {
  const Circuit c = and_or_circuit();
  const std::vector<double> bdd_inf = exact_influences(c);
  const sim::SensitivityResult sim_r = sim::compute_sensitivity(c);
  ASSERT_EQ(bdd_inf.size(), sim_r.influence.size());
  for (std::size_t i = 0; i < bdd_inf.size(); ++i) {
    EXPECT_NEAR(bdd_inf[i], sim_r.influence[i], 1e-9) << "input " << i;
  }
}

TEST(BddAnalysis, EquivalentCircuitsDetected) {
  // a&b | d  ==  d | b&a (rebuilt in a different shape).
  Circuit other;
  const NodeId a = other.add_input();
  const NodeId b = other.add_input();
  const NodeId d = other.add_input();
  const NodeId g1 = other.add_gate(GateType::kAnd, b, a);
  other.add_output(other.add_gate(GateType::kOr, d, g1));
  EXPECT_TRUE(bdd_equivalent(and_or_circuit(), other));
}

TEST(BddAnalysis, InequivalentCircuitsDetected) {
  Circuit other;
  const NodeId a = other.add_input();
  const NodeId b = other.add_input();
  const NodeId d = other.add_input();
  const NodeId g1 = other.add_gate(GateType::kOr, a, b);  // OR instead of AND
  other.add_output(other.add_gate(GateType::kOr, g1, d));
  EXPECT_FALSE(bdd_equivalent(and_or_circuit(), other));
}

TEST(BddAnalysis, InterfaceMismatchNotEquivalent) {
  Circuit one_output = and_or_circuit();
  Circuit two_outputs = and_or_circuit();
  two_outputs.add_output(two_outputs.outputs()[0]);
  EXPECT_FALSE(bdd_equivalent(one_output, two_outputs));
}

}  // namespace
}  // namespace enb::bdd
