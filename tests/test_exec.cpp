// Unit tests for the exec subsystem: counter-based stream derivation, shard
// planning, and the chunked thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"

namespace enb::exec {
namespace {

TEST(Stream, DistinctAcrossIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seen.insert(stream_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Stream, DistinctAcrossSeeds) {
  EXPECT_NE(stream_seed(1, 0), stream_seed(2, 0));
  EXPECT_NE(stream_seed(0, 0), stream_seed(0, 1));
}

TEST(Stream, PureFunction) {
  EXPECT_EQ(stream_seed(7, 3), stream_seed(7, 3));
}

TEST(Stream, NeighbouringIndicesDecorrelated) {
  // Consecutive stream seeds should differ in roughly half their bits.
  int total_flips = 0;
  const int pairs = 256;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t diff = stream_seed(9, i) ^ stream_seed(9, i + 1);
    total_flips += std::popcount(diff);
  }
  const double avg = static_cast<double>(total_flips) / pairs;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(ShardPlanTest, CoversRangeExactly) {
  const ShardPlan plan(1000, 64);
  EXPECT_EQ(plan.num_shards(), 16u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < plan.num_shards(); ++i) {
    const Shard s = plan.shard(i);
    EXPECT_EQ(s.begin, covered);
    covered = s.end;
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(plan.shard(15).size(), 1000u - 15u * 64u);
}

TEST(ShardPlanTest, ExactMultiple) {
  const ShardPlan plan(256, 64);
  EXPECT_EQ(plan.num_shards(), 4u);
  EXPECT_EQ(plan.shard(3).size(), 64u);
}

TEST(ShardPlanTest, ZeroShardSizeClampedToOne) {
  const ShardPlan plan(5, 0);
  EXPECT_EQ(plan.num_shards(), 5u);
}

TEST(ShardPlanTest, EmptyTotal) {
  const ShardPlan plan(0, 64);
  EXPECT_EQ(plan.num_shards(), 0u);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SumMatchesSerial) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(1001, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::uint64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000ull * 1001ull / 2ull);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ReentrantCallRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // A nested parallel_for from a worker must not deadlock.
    pool.parallel_for(5, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 20);
}

TEST(ThreadPoolTest, NestedDifferentPoolStaysParallel) {
  // Only a reentrant call on the *same* pool runs inline; a dedicated pool
  // created inside a job keeps its workers busy.
  ThreadPool outer(2);
  std::atomic<int> total{0};
  outer.parallel_for(3, [&](std::size_t) {
    ThreadPool inner(2);
    inner.parallel_for(7, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 21);
}

TEST(ThreadPoolTest, BackToBackJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64) << "round " << round;
  }
}

TEST(ForEachIndex, SerialPolicyVisitsInOrder) {
  std::vector<std::size_t> order;
  for_each_index(
      6, [&](std::size_t i) { order.push_back(i); }, ExecPolicy{1});
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expected);
}

TEST(ForEachIndex, DedicatedPoolPolicy) {
  std::atomic<std::uint64_t> sum{0};
  for_each_index(
      257,
      [&](std::size_t i) {
        sum.fetch_add(static_cast<std::uint64_t>(i) + 1,
                      std::memory_order_relaxed);
      },
      ExecPolicy{3});
  EXPECT_EQ(sum.load(), 257ull * 258ull / 2ull);
}

TEST(ForEachIndex, GlobalPoolPolicy) {
  std::atomic<int> count{0};
  for_each_index(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(DefaultThreadCount, IsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace enb::exec
