// Monte-Carlo validation of the analytical models: the fault-injection
// simulator must reproduce Theorem 1 (switching activity under noise) and
// the channel-composition algebra, and real redundancy schemes must respect
// the Theorem 2 size bound. This is the empirical-soundness layer the paper
// itself did not include.
#include <gtest/gtest.h>

#include <cmath>

#include "core/activity_model.hpp"
#include "core/channel.hpp"
#include "core/validate_bounds.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/iscas.hpp"
#include "gen/parity.hpp"
#include "gen/random_circuit.hpp"
#include "sim/activity.hpp"
#include "sim/bitpack.hpp"
#include "sim/noise.hpp"
#include "sim/prng.hpp"
#include "synth/mapper.hpp"

namespace enb {
namespace {

// Measures the toggle rate of every node of `circuit` under noisy evaluation
// with temporally independent vector pairs, mirroring the Theorem 1 setup.
std::vector<double> measure_noisy_activity(const netlist::Circuit& circuit,
                                           double eps, std::size_t pairs,
                                           std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  sim::NoisySim sim_noisy(circuit, eps, rng.next());
  std::vector<sim::Word> in_a(circuit.num_inputs());
  std::vector<sim::Word> in_b(circuit.num_inputs());
  std::vector<std::uint64_t> toggles(circuit.node_count(), 0);
  for (std::size_t p = 0; p < pairs; ++p) {
    for (auto& w : in_a) w = rng.next();
    for (auto& w : in_b) w = rng.next();
    sim_noisy.eval(in_a);
    const std::vector<sim::Word> first(sim_noisy.values().begin(),
                                       sim_noisy.values().end());
    sim_noisy.eval(in_b);
    for (std::size_t id = 0; id < circuit.node_count(); ++id) {
      toggles[id] += static_cast<std::uint64_t>(
          sim::popcount(first[id] ^ sim_noisy.values()[id]));
    }
  }
  std::vector<double> rate(circuit.node_count());
  for (std::size_t id = 0; id < circuit.node_count(); ++id) {
    rate[id] = static_cast<double>(toggles[id]) /
               (static_cast<double>(pairs) * sim::kWordBits);
  }
  return rate;
}

class Theorem1McTest : public ::testing::TestWithParam<double> {};

// Theorem 1 is exact for the *output channel of one gate*: sw(z) =
// (1-2e)^2 sw(y) + 2e(1-e) where sw(y) is the noisy-input/clean-gate toggle
// rate. For a single-gate circuit sw(y) is the clean rate.
TEST_P(Theorem1McTest, SingleGateMatchesFormula) {
  const double eps = GetParam();
  netlist::Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  c.add_output(c.add_gate(netlist::GateType::kAnd, a, b));

  const double sw_clean = sim::exact_activity(c).toggle_rate[c.outputs()[0]];
  const std::size_t pairs = 1 << 12;
  const auto measured = measure_noisy_activity(c, eps, pairs, 11);
  const double expected = core::noisy_activity(sw_clean, eps);
  const double sigma =
      std::sqrt(expected * (1 - expected) /
                (static_cast<double>(pairs) * sim::kWordBits));
  EXPECT_NEAR(measured[c.outputs()[0]], expected, 6 * sigma + 1e-4)
      << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, Theorem1McTest,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.1, 0.25,
                                           0.4, 0.5));

TEST(MonteCarloValidation, Theorem1HoldsPerGateWithNoisyInputs) {
  // For an internal gate whose *inputs* are themselves noisy, Theorem 1
  // still relates its observed output rate to the same gate's rate with the
  // final channel removed. Verify on a two-level circuit by comparing
  // against a per-node epsilon vector with the last gate clean.
  netlist::Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  const auto d = c.add_input();
  const auto g1 = c.add_gate(netlist::GateType::kOr, a, b);
  const auto g2 = c.add_gate(netlist::GateType::kAnd, g1, d);
  c.add_output(g2);

  const double eps = 0.05;
  const std::size_t pairs = 1 << 13;

  // Full noise.
  const auto noisy = measure_noisy_activity(c, eps, pairs, 21);

  // Same noise except g2's own channel disabled.
  sim::Xoshiro256 rng(21);
  std::vector<double> eps_vec(c.node_count(), eps);
  eps_vec[g2] = 0.0;
  sim::NoisySim partial(c, eps_vec, rng.next());
  std::vector<sim::Word> in_a(3), in_b(3);
  std::uint64_t toggles = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    for (auto& w : in_a) w = rng.next();
    for (auto& w : in_b) w = rng.next();
    partial.eval(in_a);
    const sim::Word first = partial.value(g2);
    partial.eval(in_b);
    toggles += static_cast<std::uint64_t>(
        sim::popcount(first ^ partial.value(g2)));
  }
  const double sw_y = static_cast<double>(toggles) /
                      (static_cast<double>(pairs) * sim::kWordBits);
  const double expected = core::noisy_activity(sw_y, eps);
  EXPECT_NEAR(noisy[g2], expected, 0.01);
}

TEST(MonteCarloValidation, BufferChainMatchesChannelComposition) {
  // k cascaded eps-buffers behave as one channel of compose_epsilon_n(eps,k).
  const int k = 4;
  const double eps = 0.03;
  netlist::Circuit c;
  auto prev = c.add_input();
  for (int i = 0; i < k; ++i) prev = c.add_gate(netlist::GateType::kBuf, prev);
  c.add_output(prev);

  sim::Xoshiro256 rng(31);
  sim::NoisySim noisy(c, eps, rng.next());
  const std::vector<sim::Word> zero(1, 0);
  std::uint64_t flips = 0;
  const int passes = 4000;
  for (int p = 0; p < passes; ++p) {
    noisy.eval(zero);
    flips += static_cast<std::uint64_t>(sim::popcount(noisy.output_values()[0]));
  }
  const double measured = static_cast<double>(flips) / (passes * 64.0);
  const double expected = core::compose_epsilon_n(eps, k);
  EXPECT_NEAR(measured, expected, 0.005);
}

TEST(MonteCarloValidation, RandomCircuitActivityIsContractedTowardHalf) {
  // Across random circuits, the average noisy gate activity must sit closer
  // to 1/2 than the clean one (Theorem 1's contraction, on average).
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    gen::RandomCircuitOptions options;
    options.seed = seed;
    options.num_gates = 80;
    const auto c = gen::random_circuit(options);
    sim::ActivityOptions act;
    act.sample_pairs = 1 << 11;
    const double clean =
        sim::estimate_activity(c, act).avg_gate_toggle_rate;
    const auto noisy_rates = measure_noisy_activity(c, 0.1, 1 << 11, seed);
    double noisy_avg = 0.0;
    std::size_t gates = 0;
    for (netlist::NodeId id = 0; id < c.node_count(); ++id) {
      if (!counts_as_gate(c.type(id))) continue;
      noisy_avg += noisy_rates[id];
      ++gates;
    }
    noisy_avg /= static_cast<double>(gates);
    EXPECT_LT(std::abs(noisy_avg - 0.5), std::abs(clean - 0.5) + 0.02)
        << "seed=" << seed;
  }
}

TEST(MonteCarloValidation, NmrLadderRespectsTheorem2) {
  // Every achieved (size, delta_hat) point of the NMR ladder must satisfy
  // the Theorem 2 size requirement. Note the ladder is NOT monotone in the
  // copy count here: for a 3-gate base circuit the majority-of-5/7 voter (a
  // popcount network of noisy 2-input gates) contributes more error than the
  // replicas remove — von Neumann's observation that restitution organs must
  // be simple. TMR, whose voter is 4 gates, does improve on the bare circuit.
  const auto base = gen::parity_tree(4, 2);
  const core::CircuitProfile profile = core::extract_profile(base);
  const double eps = 0.01;
  sim::ReliabilityOptions rel_options;
  rel_options.trials = 1 << 16;
  const auto bare = sim::estimate_reliability(base, eps, rel_options);
  for (int copies : {3, 5, 7}) {
    ft::NmrOptions options;
    options.copies = copies;
    const ft::NmrResult nmr = ft::nmr_transform(base, options);
    const auto rel =
        sim::estimate_reliability_vs(nmr.circuit, base, eps, rel_options);
    if (copies == 3) {
      EXPECT_LT(rel.delta_hat, bare.delta_hat);
    }
    core::EmpiricalPoint point;
    point.scheme = "nmr" + std::to_string(copies);
    point.total_gates = static_cast<double>(nmr.circuit.gate_count());
    point.delta_hat = rel.delta_hat;
    point.delta_ci_high = rel.ci_high;
    EXPECT_TRUE(core::check_point(profile, eps, point).consistent)
        << copies << " copies";
  }
}

TEST(MonteCarloValidation, MultiplexingPointRespectsTheorem2) {
  const auto base = gen::c17();
  const core::CircuitProfile profile = core::extract_profile(base);
  const double eps = 0.005;
  ft::MultiplexOptions options;
  options.bundle_width = 5;
  options.restorative_stages = 1;
  const ft::MultiplexedCircuit mc = ft::multiplex_transform(base, options);
  sim::ReliabilityOptions rel_options;
  rel_options.trials = 1 << 15;
  const auto rel =
      ft::estimate_multiplexed_reliability(mc, base, eps, rel_options);
  core::EmpiricalPoint point;
  point.scheme = "mux5";
  point.total_gates = static_cast<double>(mc.circuit.gate_count());
  point.delta_hat = rel.delta_hat;
  point.delta_ci_high = rel.ci_high;
  EXPECT_TRUE(core::check_point(profile, eps, point).consistent);
}

}  // namespace
}  // namespace enb
