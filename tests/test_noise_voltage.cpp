#include "core/noise_voltage.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::core {
namespace {

TEST(NoiseVoltage, ZeroSupplyIsCoinFlip) {
  EXPECT_NEAR(epsilon_of_vdd(0.0), 0.5, 1e-12);
}

TEST(NoiseVoltage, MonotoneDecreasingInVdd) {
  // Large sigma keeps every point above the min_epsilon floor, so the
  // strict-decrease property is observable across the whole sweep.
  NoiseVoltageParams params;
  params.sigma = 0.5;
  double prev = 1.0;
  for (double vdd : {0.0, 0.1, 0.2, 0.4, 0.8, 1.2, 2.0}) {
    const double eps = epsilon_of_vdd(vdd, params);
    EXPECT_LT(eps, prev) << "vdd=" << vdd;
    prev = eps;
  }
  // At the floor the curve flattens instead of vanishing.
  NoiseVoltageParams tight;
  tight.sigma = 0.05;
  EXPECT_EQ(epsilon_of_vdd(2.0, tight), epsilon_of_vdd(3.0, tight));
}

TEST(NoiseVoltage, KnownGaussianPoint) {
  // At Vdd = 2σ the argument of Q is 1: ε = Q(1) ≈ 0.1587.
  NoiseVoltageParams params;
  params.sigma = 0.5;
  EXPECT_NEAR(epsilon_of_vdd(1.0, params), 0.15866, 1e-4);
}

TEST(NoiseVoltage, FloorKeepsEpsilonPositive) {
  NoiseVoltageParams params;
  params.sigma = 0.01;
  params.min_epsilon = 1e-12;
  EXPECT_GE(epsilon_of_vdd(5.0, params), 1e-12);
}

TEST(NoiseVoltage, MoreNoiseNeedsMoreVoltage) {
  NoiseVoltageParams quiet;
  quiet.sigma = 0.05;
  NoiseVoltageParams loud;
  loud.sigma = 0.15;
  EXPECT_LT(vdd_for_epsilon(0.01, quiet), vdd_for_epsilon(0.01, loud));
}

TEST(NoiseVoltage, InverseRoundTrip) {
  NoiseVoltageParams params;
  for (double eps : {0.4, 0.1, 0.01, 1e-4}) {
    const double vdd = vdd_for_epsilon(eps, params);
    EXPECT_NEAR(epsilon_of_vdd(vdd, params), eps, eps * 1e-3 + 1e-12)
        << "eps=" << eps;
  }
}

TEST(NoiseVoltage, Validation) {
  EXPECT_THROW((void)epsilon_of_vdd(-1.0), std::invalid_argument);
  NoiseVoltageParams bad;
  bad.sigma = 0.0;
  EXPECT_THROW((void)epsilon_of_vdd(1.0, bad), std::invalid_argument);
  EXPECT_THROW((void)vdd_for_epsilon(0.0), std::invalid_argument);
  EXPECT_THROW((void)vdd_for_epsilon(0.6), std::invalid_argument);
  // Unreachable target below the default 8% sigma: eps ~ 1e-30.
  NoiseVoltageParams params;
  params.min_epsilon = 1e-40;
  EXPECT_THROW((void)vdd_for_epsilon(1e-35, params, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
