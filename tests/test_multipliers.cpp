#include "gen/multipliers.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

using netlist::Circuit;

std::uint64_t run_multiplier(const Circuit& c, int bits, std::uint64_t a,
                             std::uint64_t b) {
  std::vector<bool> in;
  for (int i = 0; i < bits; ++i) in.push_back(((a >> i) & 1U) != 0);
  for (int i = 0; i < bits; ++i) in.push_back(((b >> i) & 1U) != 0);
  const std::vector<bool> out = sim::eval_single(c, in);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) result |= std::uint64_t{1} << i;
  }
  return result;
}

struct MultiplierKind {
  const char* name;
  Circuit (*build)(int);
};

class MultiplierTest : public ::testing::TestWithParam<MultiplierKind> {};

TEST_P(MultiplierTest, ThreeBitExhaustive) {
  const Circuit c = GetParam().build(3);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      EXPECT_EQ(run_multiplier(c, 3, a, b), a * b)
          << c.name() << ": " << a << "*" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MultiplierTest,
    ::testing::Values(
        MultiplierKind{"array", [](int n) { return array_multiplier(n); }},
        MultiplierKind{"wallace", [](int n) { return wallace_multiplier(n); }}),
    [](const ::testing::TestParamInfo<MultiplierKind>& info) {
      return std::string(info.param.name);
    });

TEST(Multipliers, FourBitSpotChecks) {
  const Circuit c = array_multiplier(4);
  EXPECT_EQ(run_multiplier(c, 4, 15, 15), 225u);
  EXPECT_EQ(run_multiplier(c, 4, 0, 13), 0u);
  EXPECT_EQ(run_multiplier(c, 4, 7, 9), 63u);
}

TEST(Multipliers, ArrayAndWallaceEquivalent) {
  EXPECT_TRUE(sim::exhaustive_equivalent(array_multiplier(4),
                                         wallace_multiplier(4)));
}

TEST(Multipliers, InterfaceShape) {
  const Circuit c = array_multiplier(4);
  EXPECT_EQ(c.num_inputs(), 8u);
  EXPECT_EQ(c.num_outputs(), 8u);
  EXPECT_EQ(c.output_name(0), "p0");
  EXPECT_EQ(c.output_name(7), "p7");
}

TEST(Multipliers, SizeGrowsQuadratically) {
  const auto g4 = array_multiplier(4).gate_count();
  const auto g8 = array_multiplier(8).gate_count();
  EXPECT_GT(g8, 3 * g4);  // ~4x for a quadratic structure
}

TEST(Multipliers, WallaceShallowerThanArrayAtWidth8) {
  const auto array_depth = netlist::compute_stats(array_multiplier(8)).depth;
  const auto wallace_depth =
      netlist::compute_stats(wallace_multiplier(8)).depth;
  EXPECT_LT(wallace_depth, array_depth);
}

TEST(Multipliers, WidthOne) {
  const Circuit c = array_multiplier(1);
  EXPECT_EQ(run_multiplier(c, 1, 1, 1), 1u);
  EXPECT_EQ(run_multiplier(c, 1, 1, 0), 0u);
}

TEST(Multipliers, RejectBadArgs) {
  EXPECT_THROW((void)array_multiplier(0), std::invalid_argument);
  EXPECT_THROW((void)wallace_multiplier(-1), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
