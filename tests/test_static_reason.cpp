// Static reasoning engine contract tests.
//
// The acceptance bar of the PR 8 oracle:
//   - analyze_constants separates the two proof tiers: forward constants
//     fall out of one topological scan, probe-learned constants need the
//     implication fixpoint (and land only in `proved`);
//   - StructuralHasher's canonical ids absorb the rewrites the harden pass
//     will rely on (NAND = NOT(AND), commutative sort, BUF/NOT(NOT)
//     identities, XOR cancellation, MAJ vote reductions);
//   - check_equivalence proves the ft/ redundancy variants and the strash
//     rewrite equal to their bases, refutes a single-gate mutation with the
//     differing output named, and reports "no verdict" (never "different")
//     when the BDD budget blows;
//   - kind=cec rides the analysis layer: spec string, evaluate(), and the
//     batch manifest all agree with a direct check_equivalence call.
#include "analysis/static_reason.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"
#include "netlist/circuit.hpp"
#include "synth/strash.hpp"

namespace enb::analysis {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

// ---- analyze_constants ---------------------------------------------------

TEST(StaticReason, ForwardConstantsPropagateInOneScan) {
  Circuit c("forward");
  const NodeId x = c.add_input("x");
  const NodeId zero = c.add_const(false);
  const NodeId g = c.add_gate(GateType::kAnd, x, zero);   // = 0
  const NodeId h = c.add_gate(GateType::kNor, g, g);      // = 1
  const NodeId live = c.add_gate(GateType::kXor, x, h);   // = !x, not constant
  c.add_output(live, "y");

  const ConstantFacts facts = analyze_constants(c);
  EXPECT_EQ(facts.forward[g], LogicValue::kZero);
  EXPECT_EQ(facts.forward[h], LogicValue::kOne);
  EXPECT_EQ(facts.forward[x], LogicValue::kUnknown);
  EXPECT_EQ(facts.forward[live], LogicValue::kUnknown);
  // Tier one subsumes into the proved view unchanged.
  EXPECT_EQ(facts.proved[g], LogicValue::kZero);
  EXPECT_EQ(facts.proved[h], LogicValue::kOne);
  EXPECT_EQ(facts.proved[live], LogicValue::kUnknown);
}

TEST(StaticReason, ProbingLearnsContradictionConstants) {
  // m = AND(x, NOT(x)) is identically 0, but no fanin is a constant gate, so
  // the forward tier cannot see it; probing m=1 forces x=1 and x=0 at once.
  Circuit c("probe");
  const NodeId x = c.add_input("x");
  const NodeId nx = c.add_gate(GateType::kNot, x);
  const NodeId m = c.add_gate(GateType::kAnd, x, nx);
  const NodeId y = c.add_gate(GateType::kOr, m, x);  // = x once m is folded
  c.add_output(y, "y");

  const ConstantFacts facts = analyze_constants(c);
  EXPECT_EQ(facts.forward[m], LogicValue::kUnknown);
  EXPECT_EQ(facts.proved[m], LogicValue::kZero);
  EXPECT_GT(facts.learned, 0u);
  EXPECT_GT(facts.probes, 0u);
  // x itself is genuinely free and must never be "proved".
  EXPECT_EQ(facts.proved[x], LogicValue::kUnknown);
  EXPECT_EQ(facts.proved[y], LogicValue::kUnknown);
}

TEST(StaticReason, ProbeRoundsCanBeDisabled) {
  Circuit c("no-probe");
  const NodeId x = c.add_input("x");
  const NodeId nx = c.add_gate(GateType::kNot, x);
  const NodeId m = c.add_gate(GateType::kAnd, x, nx);
  c.add_output(m, "y");

  StaticReasonOptions options;
  options.max_probe_rounds = 0;
  const ConstantFacts facts = analyze_constants(c, options);
  EXPECT_EQ(facts.proved[m], LogicValue::kUnknown);
  EXPECT_EQ(facts.probes, 0u);
  EXPECT_EQ(facts.probe_rounds, 0u);
}

// ---- StructuralHasher ----------------------------------------------------

TEST(StructuralHash, DeMorganFormsShareOneClass) {
  // NAND(a,b), NOT(AND(a,b)), and NOT(AND(b,a)) must intern identically:
  // NAND normalizes to NOT(AND(...)) and AND operands sort.
  Circuit c("demorgan");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId nand_ab = c.add_gate(GateType::kNand, a, b);
  const NodeId and_ab = c.add_gate(GateType::kAnd, a, b);
  const NodeId not_and = c.add_gate(GateType::kNot, and_ab);
  const NodeId and_ba = c.add_gate(GateType::kAnd, b, a);
  const NodeId not_and_swapped = c.add_gate(GateType::kNot, and_ba);
  c.add_output(nand_ab, "y");

  StructuralHasher hasher(c.num_inputs());
  const std::vector<std::uint32_t> ids = hasher.hash_circuit(c);
  EXPECT_EQ(ids[and_ab], ids[and_ba]);
  EXPECT_EQ(ids[nand_ab], ids[not_and]);
  EXPECT_EQ(ids[nand_ab], ids[not_and_swapped]);
  EXPECT_NE(ids[nand_ab], ids[and_ab]);
}

TEST(StructuralHash, BufAndDoubleNegationAreIdentities) {
  Circuit c("identities");
  const NodeId a = c.add_input("a");
  const NodeId buf = c.add_gate(GateType::kBuf, a);
  const NodeId n1 = c.add_gate(GateType::kNot, buf);
  const NodeId n2 = c.add_gate(GateType::kNot, n1);
  const NodeId x2 = c.add_gate(GateType::kXor, a, a);      // = 0
  const NodeId xn = c.add_gate(GateType::kXnor, a, n1);    // = XNOR(a,!a) = 0
  c.add_output(n2, "y");

  StructuralHasher hasher(c.num_inputs());
  const std::vector<std::uint32_t> ids = hasher.hash_circuit(c);
  EXPECT_EQ(ids[buf], hasher.input_id(0));
  EXPECT_EQ(ids[n2], hasher.input_id(0));  // NOT(NOT(a)) = a
  EXPECT_EQ(ids[x2], StructuralHasher::const_id(false));
  EXPECT_EQ(ids[xn], StructuralHasher::const_id(false));
}

TEST(StructuralHash, MajorityVoteReductions) {
  Circuit c("maj");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId na = c.add_gate(GateType::kNot, a);
  const NodeId dup = c.add_gate(GateType::kMaj, a, a, b);      // = a
  const NodeId cancel = c.add_gate(GateType::kMaj, a, na, b);  // = b
  const NodeId one = c.add_const(true);
  const NodeId fold = c.add_gate(GateType::kMaj, one, a, b);   // = a | b
  const NodeId or_ab = c.add_gate(GateType::kOr, a, b);
  c.add_output(dup, "y");

  StructuralHasher hasher(c.num_inputs());
  const std::vector<std::uint32_t> ids = hasher.hash_circuit(c);
  EXPECT_EQ(ids[dup], hasher.input_id(0));
  EXPECT_EQ(ids[cancel], hasher.input_id(1));
  EXPECT_EQ(ids[fold], ids[or_ab]);
}

TEST(StructuralHash, TwoInputVoterCollapsesOverEqualReplicas) {
  // The ft/ two-input voter OR(AND(r0,r1), AND(r2, OR(r0,r1))) must collapse
  // to the replica class when all three replicas hash equal — this is
  // exactly how check_equivalence discharges TMR variants structurally.
  Circuit c("voter");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId r0 = c.add_gate(GateType::kAnd, a, b);
  const NodeId r1 = c.add_gate(GateType::kAnd, b, a);
  const NodeId r2 = c.add_gate(GateType::kAnd, a, b);
  const NodeId pair = c.add_gate(GateType::kAnd, r0, r1);
  const NodeId either = c.add_gate(GateType::kOr, r0, r1);
  const NodeId tiebreak = c.add_gate(GateType::kAnd, r2, either);
  const NodeId vote = c.add_gate(GateType::kOr, pair, tiebreak);
  c.add_output(vote, "y");

  StructuralHasher hasher(c.num_inputs());
  const std::vector<std::uint32_t> ids = hasher.hash_circuit(c);
  EXPECT_EQ(ids[r0], ids[r1]);
  EXPECT_EQ(ids[r0], ids[r2]);
  // AND(r,r) = r, OR(r,r) = r, so the vote is OR(r, AND(r,r)) = r.
  EXPECT_EQ(ids[vote], ids[r0]);
}

TEST(StructuralHash, ProvedConstantsFoldIntoTheHash) {
  // With the constant view folded in, AND(x, m) where m is probe-proved 0
  // hashes straight to const 0.
  Circuit c("fold");
  const NodeId x = c.add_input("x");
  const NodeId nx = c.add_gate(GateType::kNot, x);
  const NodeId m = c.add_gate(GateType::kAnd, x, nx);
  const NodeId g = c.add_gate(GateType::kAnd, x, m);
  c.add_output(g, "y");

  const ConstantFacts facts = analyze_constants(c);
  StructuralHasher hasher(c.num_inputs());
  const std::vector<std::uint32_t> ids = hasher.hash_circuit(c, &facts.proved);
  EXPECT_EQ(ids[m], StructuralHasher::const_id(false));
  EXPECT_EQ(ids[g], StructuralHasher::const_id(false));
}

// ---- check_equivalence ---------------------------------------------------

TEST(Cec, StrashVariantProvesStructurally) {
  for (const char* name : {"c17", "rca8", "mult4"}) {
    const Circuit base = gen::find_benchmark(name).build();
    const Circuit rewritten = synth::strash(base);
    const CecResult result = check_equivalence(base, rewritten);
    EXPECT_TRUE(result.equivalent) << name;
    EXPECT_EQ(result.refuted, 0u) << name;
    EXPECT_FALSE(result.inconclusive) << name;
    EXPECT_EQ(result.proved_structural + result.proved_bdd, result.outputs)
        << name;
  }
}

TEST(Cec, RedundancyVariantsProveEquivalent) {
  const Circuit base = gen::find_benchmark("c17").build();
  const Circuit tmr = ft::nmr_transform(base).circuit;
  const CecResult vs_tmr = check_equivalence(base, tmr);
  EXPECT_TRUE(vs_tmr.equivalent);
  EXPECT_EQ(vs_tmr.refuted, 0u);

  const Circuit cascaded = ft::cascaded_tmr(base, 2);
  const CecResult vs_cascaded = check_equivalence(base, cascaded);
  EXPECT_TRUE(vs_cascaded.equivalent);

  ft::NmrOptions five;
  five.copies = 5;
  const Circuit nmr5 = ft::nmr_transform(base, five).circuit;
  EXPECT_TRUE(check_equivalence(base, nmr5).equivalent);
}

TEST(Cec, SingleGateMutationIsRefutedWithOutputNamed) {
  const Circuit base = gen::find_benchmark("c17").build();
  // Rebuild with one NAND flipped to AND: a single-gate mutation.
  Circuit mutated(std::string(base.name()) + "_mut");
  bool flipped = false;
  std::vector<NodeId> map(base.node_count());
  for (NodeId id = 0; id < base.node_count(); ++id) {
    if (base.type(id) == GateType::kInput) {
      map[id] = mutated.add_input(base.node_name(id));
      continue;
    }
    GateType type = base.type(id);
    if (!flipped && type == GateType::kNand) {
      type = GateType::kAnd;
      flipped = true;
    }
    std::vector<NodeId> fanins;
    for (const NodeId f : base.fanins(id)) fanins.push_back(map[f]);
    map[id] = mutated.add_gate(type, std::move(fanins));
    mutated.set_node_name(map[id], base.node_name(id));
  }
  ASSERT_TRUE(flipped);
  for (std::size_t o = 0; o < base.num_outputs(); ++o) {
    mutated.add_output(map[base.outputs()[o]], base.output_name(o));
  }

  const CecResult result = check_equivalence(base, mutated);
  EXPECT_FALSE(result.equivalent);
  EXPECT_GT(result.refuted, 0u);
  EXPECT_FALSE(result.first_mismatch_output.empty());
  // The named output is one of the circuit's real output labels.
  bool found = false;
  for (std::size_t o = 0; o < base.num_outputs(); ++o) {
    if (base.output_name(o) == result.first_mismatch_output) found = true;
  }
  EXPECT_TRUE(found) << result.first_mismatch_output;
}

TEST(Cec, InterfaceMismatchThrows) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  const Circuit rca8 = gen::find_benchmark("rca8").build();
  EXPECT_THROW(static_cast<void>(check_equivalence(c17, rca8)),
               std::invalid_argument);
  CecOptions bad;
  bad.signature_words = 0;
  EXPECT_THROW(static_cast<void>(check_equivalence(c17, c17, bad)),
               std::invalid_argument);
}

TEST(Cec, BddBudgetBlowoutIsInconclusiveNotDifferent) {
  // Distribution: OR(AND(a,b), AND(a,c)) vs AND(a, OR(b,c)). Signatures
  // agree and the hasher has no distribution rewrite, so the pair reaches
  // the BDD stage; a starvation-level node budget must yield "no verdict".
  Circuit lhs("dist-lhs");
  {
    const NodeId a = lhs.add_input("a");
    const NodeId b = lhs.add_input("b");
    const NodeId c = lhs.add_input("c");
    const NodeId ab = lhs.add_gate(GateType::kAnd, a, b);
    const NodeId ac = lhs.add_gate(GateType::kAnd, a, c);
    lhs.add_output(lhs.add_gate(GateType::kOr, ab, ac), "y");
  }
  Circuit rhs("dist-rhs");
  {
    const NodeId a = rhs.add_input("a");
    const NodeId b = rhs.add_input("b");
    const NodeId c = rhs.add_input("c");
    rhs.add_output(
        rhs.add_gate(GateType::kAnd, a, rhs.add_gate(GateType::kOr, b, c)),
        "y");
  }

  const CecResult full = check_equivalence(lhs, rhs);
  EXPECT_TRUE(full.equivalent);
  EXPECT_EQ(full.proved_bdd, 1u);  // only the BDD stage can close this pair

  CecOptions starved;
  starved.bdd_node_limit = 1;
  const CecResult result = check_equivalence(lhs, rhs, starved);
  EXPECT_TRUE(result.inconclusive);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.refuted, 0u);
}

// ---- analysis-layer integration ------------------------------------------

TEST(CecRequestTest, KindParsesAndSpecIsStable) {
  ASSERT_TRUE(parse_analysis_kind("cec").has_value());
  EXPECT_EQ(*parse_analysis_kind("cec"), AnalysisKind::kCec);
  EXPECT_STREQ(to_string(AnalysisKind::kCec), "cec");
  // The canonical spec covers every value-relevant knob; the serve result
  // cache keys on this string, so its shape is pinned.
  EXPECT_EQ(canonical_spec(CecRequest{}),
            "cec seed=52933 signature_words=8 bdd_node_limit=4194304");
}

TEST(CecRequestTest, EvaluateMatchesDirectCall) {
  const CompiledCircuit base =
      compile(gen::find_benchmark("c17").build());
  const CompiledCircuit tmr =
      compile(ft::nmr_transform(base.circuit()).circuit);

  AnalysisRequest request;
  request.name = "c17-vs-tmr";
  request.circuit = base;
  request.golden = tmr;
  request.options = CecRequest{};
  const AnalysisResult result = evaluate(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.kind, AnalysisKind::kCec);
  ASSERT_NE(result.get<CecResult>(), nullptr);

  const CecResult direct = check_equivalence(base.circuit(), tmr.circuit());
  const CecResult& served = *result.get<CecResult>();
  EXPECT_EQ(served.equivalent, direct.equivalent);
  EXPECT_EQ(served.proved_structural, direct.proved_structural);
  EXPECT_EQ(served.proved_bdd, direct.proved_bdd);
  EXPECT_EQ(result.metric("equivalent"), 1.0);
}

TEST(CecRequestTest, MissingGoldenFailsTheRequestNotTheBatch) {
  AnalysisRequest request;
  request.name = "no-golden";
  request.circuit = compile(gen::find_benchmark("c17").build());
  request.options = CecRequest{};
  const AnalysisResult result = evaluate(request);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("golden"), std::string::npos) << result.error;
}

TEST(CecRequestTest, ManifestLineRoundTrips) {
  std::istringstream manifest(
      "pair kind=cec circuit=c17 golden=c17 seed=7 budget=4\n");
  const auto resolve = [](const std::string& spec) {
    return compile(gen::find_benchmark(spec).build());
  };
  const std::vector<AnalysisRequest> requests =
      exec::parse_manifest_requests(manifest, resolve);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].kind(), AnalysisKind::kCec);
  ASSERT_TRUE(requests[0].golden.has_value());
  const auto& options = std::get<CecRequest>(requests[0].options).options;
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.signature_words, 4);

  const std::vector<AnalysisResult> results =
      exec::evaluate_requests(requests);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("equivalent"), 1.0);
}

}  // namespace
}  // namespace enb::analysis
