#include "gen/adders.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

using netlist::Circuit;

// Evaluates an adder on concrete operand values via single-vector simulation.
std::uint64_t run_adder(const Circuit& c, int bits, std::uint64_t a,
                        std::uint64_t b, bool cin) {
  std::vector<bool> in;
  for (int i = 0; i < bits; ++i) in.push_back(((a >> i) & 1U) != 0);
  for (int i = 0; i < bits; ++i) in.push_back(((b >> i) & 1U) != 0);
  in.push_back(cin);
  const std::vector<bool> out = sim::eval_single(c, in);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) result |= std::uint64_t{1} << i;
  }
  return result;  // sum bits then cout as the top bit
}

struct AdderKind {
  const char* name;
  Circuit (*build)(int);
};

class AdderKindTest : public ::testing::TestWithParam<AdderKind> {};

TEST_P(AdderKindTest, FourBitExhaustive) {
  const Circuit c = GetParam().build(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const std::uint64_t expect = a + b + static_cast<std::uint64_t>(cin);
        EXPECT_EQ(run_adder(c, 4, a, b, cin != 0), expect)
            << c.name() << ": " << a << "+" << b << "+" << cin;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AdderKindTest,
    ::testing::Values(
        AdderKind{"ripple", [](int n) { return ripple_carry_adder(n); }},
        AdderKind{"lookahead", [](int n) { return carry_lookahead_adder(n); }},
        AdderKind{"select", [](int n) { return carry_select_adder(n, 2); }}),
    [](const ::testing::TestParamInfo<AdderKind>& info) {
      return std::string(info.param.name);
    });

TEST(Adders, VariantsAreEquivalent) {
  const Circuit rca = ripple_carry_adder(8);
  const Circuit cla = carry_lookahead_adder(8);
  const Circuit csel = carry_select_adder(8, 3);
  EXPECT_TRUE(sim::exhaustive_equivalent(rca, cla));
  EXPECT_TRUE(sim::exhaustive_equivalent(rca, csel));
}

TEST(Adders, RippleGateCount) {
  // 5 gates per full adder.
  EXPECT_EQ(ripple_carry_adder(8).gate_count(), 40u);
  EXPECT_EQ(ripple_carry_adder(32).gate_count(), 160u);
}

TEST(Adders, RippleDepthLinear) {
  const auto s8 = netlist::compute_stats(ripple_carry_adder(8));
  const auto s16 = netlist::compute_stats(ripple_carry_adder(16));
  EXPECT_GT(s16.depth, s8.depth);
  EXPECT_GE(s8.depth, 8);
}

TEST(Adders, LookaheadShallowerThanRipple) {
  const auto rca = netlist::compute_stats(ripple_carry_adder(16));
  const auto cla = netlist::compute_stats(carry_lookahead_adder(16));
  EXPECT_LT(cla.depth, rca.depth);
}

TEST(Adders, LookaheadHasWideGates) {
  EXPECT_GE(netlist::compute_stats(carry_lookahead_adder(16)).max_fanin, 4);
}

TEST(Adders, InterfaceNaming) {
  const Circuit c = ripple_carry_adder(4);
  EXPECT_EQ(c.num_inputs(), 9u);
  EXPECT_EQ(c.num_outputs(), 5u);
  EXPECT_EQ(c.output_name(0), "sum0");
  EXPECT_EQ(c.output_name(4), "cout");
}

TEST(Adders, WidthOneWorks) {
  const Circuit c = ripple_carry_adder(1);
  EXPECT_EQ(run_adder(c, 1, 1, 1, false), 2u);  // 1+1 = 10b
  EXPECT_EQ(run_adder(c, 1, 1, 1, true), 3u);
}

TEST(Adders, RejectBadArgs) {
  EXPECT_THROW((void)ripple_carry_adder(0), std::invalid_argument);
  EXPECT_THROW((void)carry_select_adder(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
