// End-to-end daemon tests over a real Unix domain socket: round-trip
// output identity with the offline batch writer, cross-request result-cache
// semantics, protocol-robustness behaviour at the session level (malformed
// verbs, truncated frames, oversized payloads, mid-stream disconnects), and
// concurrent-client isolation/sharing. The server runs in-process so the
// tests can read its registry/cache counters directly.
#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "gen/suite.hpp"
#include "serve/client.hpp"

namespace enb::serve {
namespace {

// A fast mixed manifest: two circuits, shared profile key between the
// energy-bound and profile jobs over mult4 (one extraction by
// construction).
constexpr const char* kManifest =
    "rel kind=reliability circuit=c17 eps=0.02 budget=512 seed=5\n"
    "act kind=activity circuit=c17 budget=128\n"
    "bound kind=energy-bound circuit=mult4 eps=0.02 budget=256\n"
    "prof kind=profile circuit=mult4 budget=256\n";

// Offline reference with the server's resolution rule: compile + map to the
// default fanin-3 library, memoized per spec.
std::string offline_json(const std::string& manifest_text) {
  std::map<std::string, analysis::CompiledCircuit> handles;
  std::istringstream in(manifest_text);
  std::vector<analysis::AnalysisRequest> requests =
      exec::parse_manifest_requests(in, [&](const std::string& spec) {
        const auto it = handles.find(spec);
        if (it != handles.end()) return it->second;
        analysis::CompiledCircuit handle =
            analysis::compile(gen::find_benchmark(spec).build()).mapped(3);
        return handles.emplace(spec, std::move(handle)).first->second;
      });
  const std::vector<analysis::AnalysisResult> results =
      exec::evaluate_requests(std::move(requests));
  std::ostringstream out;
  exec::write_batch_json(out, results);
  return out.str();
}

std::string served_json(const QueryOutcome& outcome) {
  std::ostringstream out;
  outcome.assemble_json(out);
  return out.str();
}

int raw_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  FdStream stream(fd);
  stream.write_all(bytes.data(), bytes.size());
}

class ServeServerTest : public ::testing::Test {
 protected:
  void start(ServerOptions options = {}) {
    static std::atomic<int> counter{0};
    options.socket_path = "/tmp/enb_srv_" + std::to_string(::getpid()) + "_" +
                          std::to_string(counter.fetch_add(1)) + ".sock";
    server_.emplace(std::move(options));
    server_->bind();
    runner_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_.has_value()) server_->request_stop();
    if (runner_.joinable()) runner_.join();
  }

  [[nodiscard]] const std::string& path() const {
    return server_->socket_path();
  }

  // Waits (bounded) for a server-side counter condition — used where a
  // session runs past its client's lifetime.
  template <typename Predicate>
  bool wait_for(Predicate&& predicate, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::optional<Server> server_;
  std::thread runner_;
};

TEST_F(ServeServerTest, BatchRoundTripIsByteIdenticalToOffline) {
  start();
  Client client(path());
  std::vector<std::string> stream_order;
  const QueryOutcome outcome =
      client.batch(kManifest, [&](const ResultRecord& record) {
        stream_order.push_back(record.name);
      });
  EXPECT_EQ(outcome.total, 4u);
  EXPECT_EQ(outcome.failed, 0u);
  EXPECT_EQ(outcome.cached, 0u);
  EXPECT_EQ(stream_order.size(), 4u);  // streamed per result, not en bloc
  EXPECT_EQ(served_json(outcome), offline_json(kManifest));
}

TEST_F(ServeServerTest, RepeatedBatchIsServedEntirelyFromTheResultCache) {
  start();
  Client client(path());
  const QueryOutcome cold = client.batch(kManifest);
  EXPECT_EQ(cold.cached, 0u);
  const std::uint64_t extractions_after_cold =
      server_->registry_stats().profile_extractions;
  EXPECT_EQ(extractions_after_cold, 1u);  // bound+prof share one key

  const QueryOutcome warm = client.batch(kManifest);
  EXPECT_EQ(warm.cached, 4u);
  EXPECT_EQ(served_json(warm), served_json(cold));
  // Zero additional evaluations: no new extraction, four cache hits.
  EXPECT_EQ(server_->registry_stats().profile_extractions,
            extractions_after_cold);
  const ResultCacheStats cache = server_->cache_stats();
  EXPECT_EQ(cache.hits, 4u);
  EXPECT_EQ(cache.entries, 4u);
}

TEST_F(ServeServerTest, FaultCampaignRidesBatchServeAndResultCache) {
  // The new request kind must flow manifest -> batch -> serve with zero
  // special-casing: byte-identical to the offline writer, and a repeat run
  // served entirely from the result cache via the extended canonical spec.
  start();
  Client client(path());
  const std::string manifest =
      "fc-c17 kind=fault-campaign circuit=c17 budget=64 seed=11\n"
      "fc-x   kind=fault-campaign circuit=c17 mode=exhaustive\n"
      "fc-rca kind=fault-campaign circuit=rca8 budget=32\n";
  const QueryOutcome cold = client.batch(manifest);
  EXPECT_EQ(cold.total, 3u);
  EXPECT_EQ(cold.failed, 0u);
  EXPECT_EQ(cold.cached, 0u);
  EXPECT_EQ(served_json(cold), offline_json(manifest));

  const QueryOutcome warm = client.batch(manifest);
  EXPECT_EQ(warm.cached, 3u);
  EXPECT_EQ(served_json(warm), served_json(cold));

  // The analyze verb shares the manifest grammar (mode= included) and, with
  // equal options over the same content, the same cache key — the display
  // name is not part of it.
  const QueryOutcome analyzed = client.analyze(
      "c17", "fault-campaign", {"mode=exhaustive", "name=renamed"});
  ASSERT_EQ(analyzed.results.size(), 1u);
  EXPECT_TRUE(analyzed.results[0].ok);
  EXPECT_EQ(analyzed.cached, 1u);
}

TEST_F(ServeServerTest, FaultCampaignCacheKeysSeparateSpecFromPolicy) {
  // drop= and sample= change what a campaign computes, so each is its own
  // cache entry; lanes= is pure execution policy, so a result computed at
  // one width answers a request at any other.
  start();
  Client client(path());
  const QueryOutcome cold = client.analyze(
      "rca8", "fault-campaign", {"budget=48", "lanes=64", "name=fc"});
  ASSERT_EQ(cold.results.size(), 1u);
  ASSERT_TRUE(cold.results[0].ok);
  EXPECT_EQ(cold.cached, 0u);

  const QueryOutcome wide = client.analyze(
      "rca8", "fault-campaign", {"budget=48", "lanes=512", "name=fc"});
  ASSERT_TRUE(wide.results[0].ok);
  EXPECT_EQ(wide.cached, 1u);  // lane width is not part of the key
  EXPECT_EQ(served_json(wide), served_json(cold));

  const QueryOutcome dropped = client.analyze(
      "rca8", "fault-campaign", {"budget=48", "drop=1", "name=fc"});
  ASSERT_TRUE(dropped.results[0].ok);
  EXPECT_EQ(dropped.cached, 0u);  // dropping changes sim_passes

  const QueryOutcome sampled = client.analyze(
      "rca8", "fault-campaign", {"budget=48", "sample=20", "name=fc"});
  ASSERT_TRUE(sampled.results[0].ok);
  EXPECT_EQ(sampled.cached, 0u);  // sampling changes the graded universe

  const QueryOutcome sampled_again = client.analyze(
      "rca8", "fault-campaign", {"budget=48", "sample=20", "name=fc"});
  ASSERT_TRUE(sampled_again.results[0].ok);
  EXPECT_EQ(sampled_again.cached, 1u);
  EXPECT_EQ(served_json(sampled_again), served_json(sampled));
}

TEST_F(ServeServerTest, LintRidesServeAndTheResultCache) {
  start();
  Client client(path());
  const std::string manifest = "chk kind=lint circuit=c17\n";
  const QueryOutcome cold = client.batch(manifest);
  ASSERT_EQ(cold.results.size(), 1u);
  EXPECT_TRUE(cold.results[0].ok);
  EXPECT_EQ(cold.cached, 0u);
  EXPECT_EQ(served_json(cold), offline_json(manifest));

  const QueryOutcome warm = client.batch(manifest);
  EXPECT_EQ(warm.cached, 1u);
  EXPECT_EQ(served_json(warm), served_json(cold));

  const QueryOutcome analyzed =
      client.analyze("c17", "lint", {"name=renamed"});
  ASSERT_EQ(analyzed.results.size(), 1u);
  EXPECT_TRUE(analyzed.results[0].ok);
  EXPECT_EQ(analyzed.cached, 1u);  // display name is not part of the key
}

TEST_F(ServeServerTest, HardenRidesServeAndTheResultCache) {
  // kind=harden flows manifest -> batch -> serve with no new cache plumbing:
  // byte-identical to the offline writer, repeats served from the result
  // cache, and the sweep-shaping keys are part of the canonical spec.
  start();
  Client client(path());
  const std::string manifest =
      "hd kind=harden circuit=c17 budget=64 style=tmr\n";
  const QueryOutcome cold = client.batch(manifest);
  ASSERT_EQ(cold.results.size(), 1u);
  EXPECT_TRUE(cold.results[0].ok);
  EXPECT_EQ(cold.cached, 0u);
  EXPECT_EQ(served_json(cold), offline_json(manifest));

  const QueryOutcome warm = client.batch(manifest);
  EXPECT_EQ(warm.cached, 1u);
  EXPECT_EQ(served_json(warm), served_json(cold));

  // The analyze verb shares the grammar and the key; the display name is
  // not part of it.
  const QueryOutcome analyzed = client.analyze(
      "c17", "harden", {"budget=64", "style=tmr", "name=renamed"});
  ASSERT_EQ(analyzed.results.size(), 1u);
  EXPECT_TRUE(analyzed.results[0].ok);
  EXPECT_EQ(analyzed.cached, 1u);

  // Pinning a granularity sweeps a different candidate set: its own entry.
  const QueryOutcome pinned = client.analyze(
      "c17", "harden",
      {"budget=64", "style=tmr", "granularity=output", "name=hd"});
  ASSERT_EQ(pinned.results.size(), 1u);
  EXPECT_TRUE(pinned.results[0].ok);
  EXPECT_EQ(pinned.cached, 0u);
}

TEST_F(ServeServerTest, ShutdownUnderLoadJoinsEverySession) {
  start();
  // Several clients keep the server busy with real evaluations while the
  // stop lands mid-flight. Every in-flight session must be joined by run()
  // — not detached — so no session thread outlives the Server object
  // (TearDown destroys it right after this returns).
  std::vector<std::thread> workers;
  std::atomic<int> completed{0};
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&] {
      try {
        for (int round = 0; round < 8; ++round) {
          Client client(path());
          const QueryOutcome outcome = client.batch(kManifest);
          if (outcome.failed == 0) completed.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Expected once the server stops: refused connections or sessions
        // closed mid-reply. The assertion is the clean join below.
      }
    });
  }
  ASSERT_TRUE(wait_for([&] { return completed.load() >= 2; }));
  server_->request_stop();
  if (runner_.joinable()) runner_.join();  // drains + joins the sessions
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(server_->stats().sessions_active, 0u);
}

TEST_F(ServeServerTest, ResultCacheSurvivesHandleEviction) {
  start();
  Client client(path());
  const QueryOutcome cold = client.batch(kManifest);
  const Frame evicted = client.evict();
  EXPECT_EQ(evicted.arg("evicted"), "2");  // c17 + mult4
  EXPECT_EQ(server_->registry_stats().handles, 0u);

  // Fingerprint-keyed: reloading the same content hits the warm cache.
  const QueryOutcome warm = client.batch(kManifest);
  EXPECT_EQ(warm.cached, 4u);
  EXPECT_EQ(served_json(warm), served_json(cold));
}

TEST_F(ServeServerTest, AnalyzeVerbMatchesABatchOfOne) {
  start();
  Client client(path());
  const Frame loaded = client.load("mult4");
  EXPECT_EQ(loaded.arg("handle"), "mult4");
  EXPECT_EQ(loaded.arg("fingerprint").value_or("").size(), 16u);

  const QueryOutcome analyzed = client.analyze(
      "mult4", "energy-bound", {"eps=0.02", "budget=256", "name=bound"});
  ASSERT_EQ(analyzed.results.size(), 1u);
  EXPECT_TRUE(analyzed.results[0].ok);

  const std::string one_line =
      "bound kind=energy-bound circuit=mult4 eps=0.02 budget=256\n";
  EXPECT_EQ(served_json(analyzed), offline_json(one_line));
}

TEST_F(ServeServerTest, LoadReportsContentFingerprintIndependentOfName) {
  start();
  Client client(path());
  const Frame a = client.load("c17", "first");
  const Frame b = client.load("c17", "second");
  EXPECT_EQ(a.arg("fingerprint"), b.arg("fingerprint"));
  EXPECT_EQ(server_->registry_stats().handles, 2u);
  EXPECT_EQ(a.arg("gates"), b.arg("gates"));
}

TEST_F(ServeServerTest, FailedJobsAreReportedNotCached) {
  start();
  Client client(path());
  const std::string manifest =
      "bad kind=reliability circuit=c17 golden=mult4 budget=128\n"  // mismatch
      "good kind=activity circuit=c17 budget=128\n";
  const QueryOutcome outcome = client.batch(manifest);
  EXPECT_EQ(outcome.total, 2u);
  EXPECT_EQ(outcome.failed, 1u);
  EXPECT_FALSE(outcome.results[0].ok);
  EXPECT_TRUE(outcome.results[1].ok);
  EXPECT_EQ(server_->cache_stats().entries, 1u);  // only the ok result

  // The failure repeats on resubmission (never memoized as ok).
  const QueryOutcome again = client.batch(manifest);
  EXPECT_EQ(again.failed, 1u);
  EXPECT_EQ(again.cached, 1u);
}

TEST_F(ServeServerTest, UnknownVerbAndBadArgumentsKeepTheSessionUsable) {
  start();
  Client client(path());
  EXPECT_THROW((void)client.call(Frame{"frobnicate", {}, {}}), ServerError);
  EXPECT_THROW((void)client.call(Frame{"load", {}, {}}), ServerError);
  EXPECT_THROW((void)client.batch("job kind=bogus circuit=c17\n"),
               ServerError);
  EXPECT_THROW((void)client.batch("job kind=profile circuit=nosuch\n"),
               ServerError);
  EXPECT_THROW((void)client.batch("# only comments\n"), ServerError);
  // The framing stayed intact through every failure: the session still
  // answers.
  EXPECT_EQ(client.ping().verb, "ok");
  const QueryOutcome outcome = client.batch(kManifest);
  EXPECT_EQ(outcome.failed, 0u);
}

TEST_F(ServeServerTest, TruncatedFrameEndsOnlyThatSession) {
  start();
  const int fd = raw_connect(path());
  raw_send(fd, "batch payload=100\nonly a few bytes");
  ::shutdown(fd, SHUT_WR);  // EOF inside the declared payload
  // The server reports the framing error (best effort) and hangs up.
  FdStream stream(fd);
  FrameReader reader(stream);
  const auto reply = reader.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->verb, "error");
  EXPECT_NE(reply->payload.find("truncated"), std::string::npos);
  EXPECT_FALSE(reader.read_frame().has_value());  // closed
  ::close(fd);

  // Other sessions are untouched.
  Client client(path());
  EXPECT_EQ(client.ping().verb, "ok");
}

TEST_F(ServeServerTest, OversizedPayloadDeclarationEndsOnlyThatSession) {
  start();
  const int fd = raw_connect(path());
  raw_send(fd, "batch payload=1099511627776\n");
  FdStream stream(fd);
  FrameReader reader(stream);
  const auto reply = reader.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->verb, "error");
  EXPECT_NE(reply->payload.find("exceeds"), std::string::npos);
  EXPECT_FALSE(reader.read_frame().has_value());
  ::close(fd);

  Client client(path());
  EXPECT_EQ(client.ping().verb, "ok");
}

TEST_F(ServeServerTest, ClientDisconnectMidStreamWarmsTheCacheAnyway) {
  start();
  {
    // Submit and vanish: the server must survive the failed result writes,
    // finish evaluating, and keep the results.
    const int fd = raw_connect(path());
    Frame frame;
    frame.verb = "batch";
    frame.payload = kManifest;
    FdStream stream(fd);
    write_frame(stream, frame);
    ::close(fd);
  }
  ASSERT_TRUE(wait_for([this] { return server_->cache_stats().stores >= 4; }))
      << "server never finished the abandoned batch";

  Client client(path());
  const QueryOutcome outcome = client.batch(kManifest);
  EXPECT_EQ(outcome.failed, 0u);
  EXPECT_EQ(outcome.cached, 4u);  // the abandoned run's results persisted
  EXPECT_EQ(served_json(outcome), offline_json(kManifest));
}

TEST_F(ServeServerTest, ConcurrentClientsShareOneExtractionAndStayIsolated) {
  start();
  const std::string manifest =
      "bound kind=energy-bound circuit=mult4 eps=0.02 budget=2048\n"
      "prof kind=profile circuit=mult4 budget=2048\n";
  std::vector<std::thread> workers;
  std::vector<QueryOutcome> outcomes(4);
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&, i] {
      Client client(path());
      outcomes[static_cast<std::size_t>(i)] = client.batch(manifest);
    });
  }
  for (std::thread& worker : workers) worker.join();

  const std::string reference = served_json(outcomes[0]);
  for (const QueryOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.total, 2u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(served_json(outcome), reference);
  }
  // One handle, one extraction — shared by construction across sessions.
  EXPECT_EQ(server_->registry_stats().profile_extractions, 1u);
  EXPECT_EQ(server_->registry_stats().loads, 1u);
}

TEST_F(ServeServerTest, LruRegistryEvictionKeepsServingCorrectResults) {
  ServerOptions options;
  options.max_handles = 1;  // pathological: every other spec evicts
  start(options);
  Client client(path());
  const QueryOutcome outcome = client.batch(kManifest);
  EXPECT_EQ(outcome.failed, 0u);
  EXPECT_EQ(served_json(outcome), offline_json(kManifest));
  EXPECT_EQ(server_->registry_stats().handles, 1u);
  EXPECT_GE(server_->registry_stats().evictions, 1u);
}

TEST_F(ServeServerTest, StatsVerbExposesTheCounters) {
  start();
  Client client(path());
  (void)client.batch(kManifest);
  const Frame stats = client.stats();
  EXPECT_EQ(stats.uint_arg("handles"), 2u);
  EXPECT_EQ(stats.uint_arg("result_entries"), 4u);
  EXPECT_EQ(stats.uint_arg("result_misses"), 4u);
  EXPECT_EQ(stats.uint_arg("profile_extractions"), 1u);
  EXPECT_EQ(stats.uint_arg("queries"), 1u);
  EXPECT_EQ(stats.uint_arg("results"), 4u);
  EXPECT_EQ(stats.uint_arg("sessions_active"), 1u);
}

TEST_F(ServeServerTest, StatsVerbReportsUptimeAndPerVerbCounters) {
  start();
  Client client(path());
  (void)client.ping();
  (void)client.ping();
  (void)client.batch(kManifest);
  const Frame stats = client.stats();
  EXPECT_EQ(stats.uint_arg("requests_ping"), 2u);
  EXPECT_EQ(stats.uint_arg("requests_batch"), 1u);
  // The stats request itself is dispatched (and counted) before the reply
  // is assembled.
  EXPECT_EQ(stats.uint_arg("requests_stats"), 1u);
  const auto uptime = stats.arg("uptime_seconds");
  ASSERT_TRUE(uptime.has_value());
  EXPECT_GT(std::stod(*uptime), 0.0);
}

// First numeric value on the line starting with `prefix`, or -1.0 when the
// line is absent. The process-global registry accumulates across the tests
// in this binary, so counter assertions are lower bounds, not equalities.
double metric_value(const std::string& text, const std::string& prefix) {
  // Anchor at a line start so a bare family name cannot match its own
  // "# TYPE <name> <kind>" line (every metric line follows a TYPE line,
  // so a preceding '\n' always exists).
  const std::size_t line = text.find("\n" + prefix);
  if (line == std::string::npos) return -1.0;
  return std::stod(text.substr(line + 1 + prefix.size()));
}

TEST_F(ServeServerTest, MetricsVerbRendersPrometheusExposition) {
  start();
  Client client(path());
  (void)client.batch(kManifest);
  const Frame reply = client.metrics();
  const std::string& text = reply.payload;
  ASSERT_FALSE(text.empty());
  // Per-verb session counters, with this session's own requests included.
  EXPECT_GE(metric_value(text, "enb_serve_requests_total{verb=\"batch\"} "),
            1.0);
  EXPECT_GE(metric_value(text, "enb_serve_requests_total{verb=\"metrics\"} "),
            1.0);
  // The batch request's latency landed in the per-verb histogram.
  EXPECT_NE(text.find("enb_serve_request_seconds_bucket{verb=\"batch\",le="),
            std::string::npos);
  EXPECT_GE(
      metric_value(text, "enb_serve_request_seconds_count{verb=\"batch\"} "),
      1.0);
  // Scrape-time mirrors of the shared stores and session table: these read
  // this server instance's stats, so they are exact.
  EXPECT_EQ(metric_value(text, "enb_serve_result_cache_entries "), 4.0);
  EXPECT_EQ(metric_value(text, "enb_serve_handle_registry_handles "), 2.0);
  EXPECT_EQ(metric_value(text, "enb_serve_sessions_active "), 1.0);
  EXPECT_GT(metric_value(text, "enb_serve_uptime_seconds "), 0.0);
  // Session byte meters saw real traffic in both directions.
  EXPECT_GT(metric_value(text, "enb_serve_bytes_in_total "), 0.0);
  EXPECT_GT(metric_value(text, "enb_serve_bytes_out_total "), 0.0);
  // Exec instrumentation rode along: the batch ran pool tasks.
  EXPECT_GT(metric_value(text, "enb_exec_tasks_total "), 0.0);
}

TEST_F(ServeServerTest, ShutdownVerbStopsTheRunLoop) {
  start();
  {
    Client client(path());
    (void)client.shutdown_server();
  }
  if (runner_.joinable()) runner_.join();
  // The socket file is gone: new connections are refused.
  EXPECT_THROW(Client{path()}, std::runtime_error);
}

}  // namespace
}  // namespace enb::serve
