#include "synth/strash.hpp"

#include <gtest/gtest.h>

#include "sim/exhaustive.hpp"

namespace enb::synth {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(Strash, MergesIdenticalGates) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kAnd, a, b);
  c.add_output(c.add_gate(GateType::kXor, g1, g2));
  const Circuit s = strash(c);
  // The two ANDs merge; XOR(x, x) remains structurally (strash does not do
  // algebra) but has identical fanins.
  EXPECT_EQ(s.gate_count(), 2u);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Strash, CommutativeCanonicalization) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kAnd, b, a);  // swapped operands
  c.add_output(g1);
  c.add_output(g2);
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 1u);
  EXPECT_EQ(s.outputs()[0], s.outputs()[1]);
}

TEST(Strash, NonCommutativeGatesKeepOrder) {
  // BUF/NOT have a single operand; nothing to reorder, but two NOTs of
  // different nodes must not merge.
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kNot, a));
  c.add_output(c.add_gate(GateType::kNot, b));
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 2u);
}

TEST(Strash, CascadedSharingDiscovered) {
  // Two structurally identical towers merge level by level.
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId x1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId y1 = c.add_gate(GateType::kAnd, b, a);
  const NodeId x2 = c.add_gate(GateType::kOr, x1, a);
  const NodeId y2 = c.add_gate(GateType::kOr, y1, a);
  c.add_output(x2);
  c.add_output(y2);
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 2u);
}

TEST(Strash, ConstantsDeduplicate) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId k1 = c.add_const(true);
  const NodeId k2 = c.add_const(true);
  c.add_output(c.add_gate(GateType::kAnd, a, k1));
  c.add_output(c.add_gate(GateType::kAnd, a, k2));
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 1u);
}

TEST(Strash, DifferentTypesNeverMerge) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  c.add_output(c.add_gate(GateType::kNand, a, b));
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 2u);
}

TEST(Strash, MajCanonicalizes) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, b, d));
  c.add_output(c.add_gate(GateType::kMaj, d, a, b));
  const Circuit s = strash(c);
  EXPECT_EQ(s.gate_count(), 1u);
}

TEST(Strash, PreservesNamesAndInterface) {
  Circuit c("named");
  const NodeId a = c.add_input("in_a");
  const NodeId b = c.add_input("in_b");
  c.add_output(c.add_gate(GateType::kOr, a, b), "out_y");
  const Circuit s = strash(c);
  EXPECT_EQ(s.name(), "named");
  EXPECT_EQ(s.node_name(s.inputs()[0]), "in_a");
  EXPECT_EQ(s.output_name(0), "out_y");
}

}  // namespace
}  // namespace enb::synth
