#include "seq/seq_gen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "seq/seq_sim.hpp"
#include "sim/bitpack.hpp"

namespace enb::seq {
namespace {

// Runs the machine for `cycles` on lane 0 with all-zero free inputs and
// returns the state (latch values) per cycle as integers.
std::vector<std::uint64_t> trace_states(const SeqCircuit& seq, int cycles) {
  SeqSim sim(seq);
  const std::vector<sim::Word> zeros(seq.num_free_inputs(), 0);
  std::vector<std::uint64_t> states;
  for (int t = 0; t < cycles; ++t) {
    std::uint64_t s = 0;
    for (std::size_t l = 0; l < seq.num_latches(); ++l) {
      s |= (sim.state()[l] & 1U) << l;
    }
    states.push_back(s);
    (void)sim.step(zeros);
  }
  return states;
}

TEST(SeqGen, LfsrMaximalPeriod4) {
  // A maximal 4-bit LFSR visits all 15 nonzero states before repeating.
  const SeqCircuit seq = lfsr_maximal(4);
  const auto states = trace_states(seq, 16);
  std::set<std::uint64_t> distinct(states.begin(), states.begin() + 15);
  EXPECT_EQ(distinct.size(), 15u);
  EXPECT_EQ(states[15], states[0]);  // period exactly 15
  for (std::uint64_t s : states) EXPECT_NE(s, 0u);  // never locks at zero
}

TEST(SeqGen, LfsrMaximalPeriod5) {
  const SeqCircuit seq = lfsr_maximal(5);
  const auto states = trace_states(seq, 32);
  std::set<std::uint64_t> distinct(states.begin(), states.begin() + 31);
  EXPECT_EQ(distinct.size(), 31u);
  EXPECT_EQ(states[31], states[0]);
}

TEST(SeqGen, LfsrValidation) {
  EXPECT_THROW((void)lfsr(1, {0}), std::invalid_argument);
  EXPECT_THROW((void)lfsr(4, {}), std::invalid_argument);
  EXPECT_THROW((void)lfsr(4, {4}), std::invalid_argument);
  EXPECT_THROW((void)lfsr_maximal(6), std::invalid_argument);
}

TEST(SeqGen, CounterSequence) {
  const SeqCircuit seq = counter(3);
  SeqSim sim(seq);
  const std::vector<sim::Word> enable{sim::kAllOnes};
  for (int expected = 0; expected < 10; ++expected) {
    std::uint64_t value = 0;
    for (std::size_t l = 0; l < seq.num_latches(); ++l) {
      value |= (sim.state()[l] & 1U) << l;
    }
    EXPECT_EQ(value, static_cast<std::uint64_t>(expected % 8));
    (void)sim.step(enable);
  }
}

TEST(SeqGen, CounterHoldsWithoutEnable) {
  const SeqCircuit seq = counter(3);
  SeqSim sim(seq);
  const std::vector<sim::Word> enable{sim::kAllOnes};
  const std::vector<sim::Word> hold{0};
  (void)sim.step(enable);
  (void)sim.step(enable);
  const auto before = sim.state();
  (void)sim.step(hold);
  EXPECT_EQ(sim.state(), before);
}

TEST(SeqGen, SequenceDetectorFires) {
  // Pattern 101 (LSB first): detector asserts after inputs ...1,0,1 have
  // been shifted in.
  const SeqCircuit seq = sequence_detector(0b101, 3);
  SeqSim sim(seq);
  const auto feed = [&](bool bit) {
    const std::vector<sim::Word> in{bit ? sim::kAllOnes : 0};
    return sim.step(in);
  };
  // The output reflects the *current* window (before this cycle's shift).
  (void)feed(true);
  (void)feed(false);
  (void)feed(true);
  // Window now holds w0=1 (last bit), w1=0, w2=1 -> pattern 101 matched.
  const auto out = feed(false);
  EXPECT_EQ(out[0] & 1U, 1u);
  // One more shift breaks the match.
  const auto out2 = feed(false);
  EXPECT_EQ(out2[0] & 1U, 0u);
}

TEST(SeqGen, DetectorValidation) {
  EXPECT_THROW((void)sequence_detector(1, 0), std::invalid_argument);
  EXPECT_THROW((void)sequence_detector(1, 17), std::invalid_argument);
}

}  // namespace
}  // namespace enb::seq
