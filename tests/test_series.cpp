#include "report/series.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace enb::report {
namespace {

TEST(Series, ConstructionAndPush) {
  Series s("energy", {1, 2}, {1.5, 2.5});
  EXPECT_EQ(s.size(), 2u);
  s.push(3, 3.5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.y.back(), 3.5);
  EXPECT_FALSE(s.empty());
}

TEST(Series, MismatchedLengthsRejected) {
  EXPECT_THROW(Series("bad", {1, 2}, {1.0}), std::invalid_argument);
}

TEST(Series, FiniteRangeSkipsInfNan) {
  Series s("mixed", {}, {});
  s.push(0, 1.0);
  s.push(1, std::numeric_limits<double>::infinity());
  s.push(2, 5.0);
  s.push(3, std::nan(""));
  double lo = 0, hi = 0;
  ASSERT_TRUE(s.finite_y_range(lo, hi));
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 5.0);
}

TEST(Series, AllNonFiniteRange) {
  Series s("inf", {0.0}, {std::numeric_limits<double>::infinity()});
  double lo = 0, hi = 0;
  EXPECT_FALSE(s.finite_y_range(lo, hi));
}

TEST(Series, EmptyRange) {
  const Series s;
  double lo = 0, hi = 0;
  EXPECT_FALSE(s.finite_y_range(lo, hi));
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace enb::report
