#include "sim/logic_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit full_adder() {
  Circuit c("fa");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId cin = c.add_input("cin");
  const NodeId axb = c.add_gate(GateType::kXor, a, b);
  const NodeId sum = c.add_gate(GateType::kXor, axb, cin);
  const NodeId ab = c.add_gate(GateType::kAnd, a, b);
  const NodeId ct = c.add_gate(GateType::kAnd, cin, axb);
  const NodeId cout = c.add_gate(GateType::kOr, ab, ct);
  c.add_output(sum, "sum");
  c.add_output(cout, "cout");
  return c;
}

TEST(LogicSim, FullAdderTruth) {
  const Circuit c = full_adder();
  for (int assignment = 0; assignment < 8; ++assignment) {
    const bool a = (assignment & 1) != 0;
    const bool b = (assignment & 2) != 0;
    const bool cin = (assignment & 4) != 0;
    const std::vector<bool> in{a, b, cin};
    const std::vector<bool> out = eval_single(c, in);
    const int total = int(a) + int(b) + int(cin);
    EXPECT_EQ(out[0], (total & 1) != 0) << "assignment " << assignment;
    EXPECT_EQ(out[1], total >= 2) << "assignment " << assignment;
  }
}

TEST(LogicSim, LanesAreIndependent) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  LogicSim sim(c);
  const std::vector<Word> in{0xFF00FF00FF00FF00ULL, 0xF0F0F0F0F0F0F0F0ULL};
  sim.eval(in);
  EXPECT_EQ(sim.output_values()[0], 0xF000F000F000F000ULL);
}

TEST(LogicSim, ConstantsEvaluate) {
  Circuit c;
  const NodeId k1 = c.add_const(true);
  const NodeId k0 = c.add_const(false);
  c.add_output(c.add_gate(GateType::kOr, k0, k1));
  c.add_output(c.add_gate(GateType::kAnd, k0, k1));
  LogicSim sim(c);
  sim.eval({});
  EXPECT_EQ(sim.output_values()[0], kAllOnes);
  EXPECT_EQ(sim.output_values()[1], 0ULL);
}

TEST(LogicSim, InputOrderMatchesDeclaration) {
  Circuit c;
  const NodeId a = c.add_input("a");
  c.add_gate(GateType::kNot, a);  // interleave a gate between inputs
  const NodeId b = c.add_input("b");
  c.add_output(a);
  c.add_output(b);
  LogicSim sim(c);
  const std::vector<Word> in{1, 2};
  sim.eval(in);
  EXPECT_EQ(sim.output_values()[0], 1ULL);
  EXPECT_EQ(sim.output_values()[1], 2ULL);
}

TEST(LogicSim, WrongInputCountThrows) {
  Circuit c;
  c.add_input();
  c.add_output(c.inputs()[0]);
  LogicSim sim(c);
  const std::vector<Word> none{};
  EXPECT_THROW(sim.eval(none), std::invalid_argument);
}

TEST(LogicSim, C17KnownVectors) {
  const Circuit c = netlist::read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)");
  // All-zero inputs: 10=1, 11=1, 16=1, 19=1 -> 22 = NAND(1,1)=0, 23=0.
  std::vector<bool> in(5, false);
  auto out = eval_single(c, in);
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  // All-one inputs: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
  // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
  in.assign(5, true);
  out = eval_single(c, in);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(LogicSim, ReusableAcrossEvals) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kNot, a));
  LogicSim sim(c);
  const std::vector<Word> first{0ULL};
  sim.eval(first);
  EXPECT_EQ(sim.output_values()[0], kAllOnes);
  const std::vector<Word> second{kAllOnes};
  sim.eval(second);
  EXPECT_EQ(sim.output_values()[0], 0ULL);
}

}  // namespace
}  // namespace enb::sim
