#include "core/depth_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::core {
namespace {

TEST(DepthBound, DeltaCapacityShape) {
  // Delta(0) = 1; Delta(1/2-) -> 0; strictly decreasing.
  EXPECT_DOUBLE_EQ(delta_capacity(0.0), 1.0);
  EXPECT_NEAR(delta_capacity(0.01), 0.9192, 5e-4);  // 1 - H(0.01)
  EXPECT_NEAR(delta_capacity(0.11), 1 - 0.4999, 0.01);
  double prev = 1.0;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.49}) {
    const double cap = delta_capacity(d);
    EXPECT_LT(cap, prev);
    EXPECT_GT(cap, 0.0);
    prev = cap;
  }
}

TEST(DepthBound, FeasibilityThresholds) {
  // xi^2 > 1/k boundary: eps* = (1 - k^{-1/2})/2.
  EXPECT_NEAR(max_feasible_epsilon(2), 0.14645, 1e-4);
  EXPECT_NEAR(max_feasible_epsilon(3), 0.21132, 1e-4);
  EXPECT_NEAR(max_feasible_epsilon(4), 0.25, 1e-12);
  EXPECT_TRUE(depth_feasible(0.14, 2));
  EXPECT_FALSE(depth_feasible(0.15, 2));
  EXPECT_TRUE(depth_feasible(0.2, 3));
  EXPECT_FALSE(depth_feasible(0.25, 4));  // strict inequality
}

TEST(DepthBound, InfeasibleRegimeInputLimit) {
  // n <= 1/Delta when xi^2 <= 1/k.
  EXPECT_NEAR(max_inputs_infeasible(0.01), 1.0 / 0.9192, 5e-3);
  EXPECT_GT(max_inputs_infeasible(0.49), 1000.0);
}

TEST(DepthBound, PaperParametersAtLowNoise) {
  // n=10, delta=0.01, k=2, eps=0.01: log2(10*0.9192)/log2(2*0.9604) ≈ 3.40.
  const double d = depth_lower_bound(10, 2, 0.01, 0.01);
  EXPECT_NEAR(d, std::log2(10 * delta_capacity(0.01)) /
                     std::log2(2 * 0.98 * 0.98),
              1e-12);
  EXPECT_NEAR(d, 3.40, 0.02);
}

TEST(DepthBound, NoiselessLimitIsLogK) {
  // eps=0: bound = log2(n*Delta)/log2(k) — the fanin-limited depth.
  const double d = depth_lower_bound(16, 2, 0.0, 0.0);
  EXPECT_NEAR(d, 4.0, 1e-12);
}

TEST(DepthBound, MonotoneInEpsilon) {
  double prev = 0.0;
  for (double eps : {0.0, 0.01, 0.05, 0.1, 0.14}) {
    const double d = depth_lower_bound(10, 2, eps, 0.01);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(DepthBound, VacuousForTinyFunctions) {
  // n*Delta <= 1 -> bound 0 (a single input needs no depth).
  EXPECT_DOUBLE_EQ(depth_lower_bound(1, 2, 0.01, 0.01), 0.0);
}

TEST(DepthBound, ThrowsInInfeasibleRegime) {
  EXPECT_THROW((void)depth_lower_bound(10, 2, 0.2, 0.01),
               std::invalid_argument);
}

TEST(DelayFactor, DependsOnlyOnFanin) {
  // The normalized factor log k / log(k xi^2): n and delta absent.
  const double f = delay_factor_lower_bound(2, 0.01);
  EXPECT_NEAR(f, std::log2(2.0) / std::log2(2 * 0.98 * 0.98), 1e-12);
  EXPECT_NEAR(f, 1.0622, 5e-4);
}

TEST(DelayFactor, UnityAtZeroNoise) {
  for (double k : {2.0, 2.5, 3.0, 4.0}) {
    EXPECT_DOUBLE_EQ(delay_factor_lower_bound(k, 0.0), 1.0);
  }
}

TEST(DelayFactor, DivergesAtFeasibilityEdge) {
  const double near_edge = max_feasible_epsilon(2) - 1e-4;
  EXPECT_GT(delay_factor_lower_bound(2, near_edge), 100.0);
  EXPECT_TRUE(std::isinf(delay_factor_lower_bound(2, 0.15)));
}

TEST(DelayFactor, LargerFaninToleratesMoreNoise) {
  // At eps=0.2, k=2 is infeasible but k=3 and 4 are not.
  EXPECT_TRUE(std::isinf(delay_factor_lower_bound(2, 0.2)));
  EXPECT_TRUE(std::isfinite(delay_factor_lower_bound(3, 0.2)));
  EXPECT_LT(delay_factor_lower_bound(4, 0.2),
            delay_factor_lower_bound(3, 0.2));
}

class DelayFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelayFactorSweep, MonotoneInEpsilonWithinFeasible) {
  const double k = GetParam();
  double prev = 1.0;
  const double edge = max_feasible_epsilon(k);
  for (int i = 1; i <= 10; ++i) {
    const double eps = edge * i / 11.0;
    const double f = delay_factor_lower_bound(k, eps);
    EXPECT_GE(f, prev) << "k=" << k << " eps=" << eps;
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanins, DelayFactorSweep,
                         ::testing::Values(2.0, 2.5, 3.0, 4.0, 6.0));

TEST(DepthBound, DomainChecks) {
  EXPECT_THROW((void)depth_feasible(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)depth_lower_bound(0, 2, 0.01, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)delta_capacity(0.5), std::invalid_argument);
  EXPECT_THROW((void)max_feasible_epsilon(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
