// Handle registry + result cache semantics: LRU bounds, counters, and the
// canonical-spec / fingerprint identities that make cross-request result
// memoization sound.
#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "gen/suite.hpp"

namespace enb::serve {
namespace {

analysis::CompiledCircuit compile_suite(const std::string& name) {
  return analysis::compile(gen::find_benchmark(name).build());
}

// ---- canonical spec ------------------------------------------------------

TEST(CanonicalSpec, EqualOptionsSerializeIdentically) {
  analysis::ReliabilityRequest a;
  a.epsilon = 0.02;
  a.options.trials = 4096;
  analysis::ReliabilityRequest b = a;
  EXPECT_EQ(analysis::canonical_spec(a), analysis::canonical_spec(b));
}

TEST(CanonicalSpec, EveryKnobReachesTheSpec) {
  // Each mutation below changes a value-relevant knob and must change the
  // canonical spec — a missed field would let the result cache alias two
  // different computations.
  analysis::ReliabilityRequest rel;
  const std::string base = analysis::canonical_spec(rel);
  {
    auto m = rel;
    m.epsilon = 0.5;
    EXPECT_NE(analysis::canonical_spec(m), base);
  }
  {
    auto m = rel;
    m.options.trials += 1;
    EXPECT_NE(analysis::canonical_spec(m), base);
  }
  {
    auto m = rel;
    m.options.seed += 1;
    EXPECT_NE(analysis::canonical_spec(m), base);
  }
  {
    auto m = rel;
    m.options.input_one_probability = 0.25;
    EXPECT_NE(analysis::canonical_spec(m), base);
  }
  {
    // Shard shape feeds the counter-based streams, so it is value-relevant.
    auto m = rel;
    m.options.shard_passes += 1;
    EXPECT_NE(analysis::canonical_spec(m), base);
  }
}

TEST(CanonicalSpec, DeprecatedThreadsKnobIsExcluded) {
  analysis::ReliabilityRequest a;
  analysis::ReliabilityRequest b;
  b.options.threads = 64;  // never reaches the result
  EXPECT_EQ(analysis::canonical_spec(a), analysis::canonical_spec(b));

  analysis::ProfileRequest pa;
  analysis::ProfileRequest pb;
  pb.options.threads = 8;
  EXPECT_EQ(analysis::canonical_spec(pa), analysis::canonical_spec(pb));
}

TEST(CanonicalSpec, KindsNeverCollide) {
  // Default-constructed specs of different kinds must never serialize
  // equal.
  const std::vector<std::string> specs = {
      analysis::canonical_spec(analysis::ReliabilityRequest{}),
      analysis::canonical_spec(analysis::WorstCaseRequest{}),
      analysis::canonical_spec(analysis::ActivityRequest{}),
      analysis::canonical_spec(analysis::SensitivityRequest{}),
      analysis::canonical_spec(analysis::EnergyBoundRequest{}),
      analysis::canonical_spec(analysis::ProfileRequest{})};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i], specs[j]) << i << " vs " << j;
    }
  }
}

TEST(CanonicalSpec, ProfileOverrideContentsAreIncluded) {
  analysis::EnergyBoundRequest a;
  const std::string base = analysis::canonical_spec(a);
  analysis::EnergyBoundRequest b;
  core::CircuitProfile profile;
  profile.name = "p";
  profile.size_s0 = 10.0;
  b.profile_override = profile;
  const std::string with_override = analysis::canonical_spec(b);
  EXPECT_NE(with_override, base);

  analysis::EnergyBoundRequest c = b;
  c.profile_override->size_s0 = 11.0;
  EXPECT_NE(analysis::canonical_spec(c), with_override);
}

// ---- content fingerprint -------------------------------------------------

TEST(Fingerprint, SameContentSameFingerprintAcrossHandles) {
  const analysis::CompiledCircuit a = compile_suite("c17");
  const analysis::CompiledCircuit b = compile_suite("c17");
  EXPECT_FALSE(a.same_handle(b));
  EXPECT_EQ(a.content_fingerprint(), b.content_fingerprint());
  EXPECT_NE(a.content_fingerprint(), compile_suite("mult4").content_fingerprint());
}

// ---- handle registry -----------------------------------------------------

TEST(HandleRegistry, GetOrLoadLoadsOnceAndCountsHits) {
  HandleRegistry registry(4);
  int loads = 0;
  const auto loader = [&loads] {
    ++loads;
    return compile_suite("c17");
  };
  const HandleInfo first = registry.get_or_load("c17", loader);
  const HandleInfo second = registry.get_or_load("c17", loader);
  EXPECT_EQ(loads, 1);
  EXPECT_TRUE(first.circuit.same_handle(second.circuit));
  EXPECT_EQ(first.fingerprint, second.fingerprint);

  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.handles, 1u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(HandleRegistry, ConcurrentColdLoadsOfOneNameInvokeLoaderOnce) {
  HandleRegistry registry(4);
  std::atomic<int> loads{0};
  const auto loader = [&loads] {
    loads.fetch_add(1);
    // Widen the race window: every other thread must wait, not re-load.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return compile_suite("c17");
  };
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> fingerprints(4, 0);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      fingerprints[static_cast<std::size_t>(i)] =
          registry.get_or_load("c17", loader).fingerprint;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(loads.load(), 1);
  for (const std::uint64_t fingerprint : fingerprints) {
    EXPECT_EQ(fingerprint, fingerprints[0]);
  }
  EXPECT_EQ(registry.stats().loads, 1u);
  EXPECT_EQ(registry.stats().hits, 3u);
}

TEST(HandleRegistry, FailedLoadReleasesTheNameForRetry) {
  HandleRegistry registry(4);
  int calls = 0;
  EXPECT_THROW(
      (void)registry.get_or_load("x",
                                 [&]() -> analysis::CompiledCircuit {
                                   ++calls;
                                   throw std::runtime_error("boom");
                                 }),
      std::runtime_error);
  const HandleInfo loaded = registry.get_or_load("x", [&] {
    ++calls;
    return compile_suite("c17");
  });
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(loaded.circuit.valid());
}

TEST(HandleRegistry, EvictsLeastRecentlyUsedAboveCapacity) {
  HandleRegistry registry(2);
  registry.put("a", compile_suite("c17"));
  registry.put("b", compile_suite("parity8"));
  // Touch "a" so "b" is the LRU entry when "c" arrives.
  EXPECT_TRUE(registry.find("a").has_value());
  registry.put("c", compile_suite("mult4"));

  EXPECT_TRUE(registry.find("a").has_value());
  EXPECT_FALSE(registry.find("b").has_value());
  EXPECT_TRUE(registry.find("c").has_value());
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_EQ(registry.stats().handles, 2u);
}

TEST(HandleRegistry, ExplicitEvictAndClear) {
  HandleRegistry registry(8);
  registry.put("a", compile_suite("c17"));
  registry.put("b", compile_suite("parity8"));
  EXPECT_TRUE(registry.evict("a"));
  EXPECT_FALSE(registry.evict("a"));  // already gone
  EXPECT_EQ(registry.clear(), 1u);
  EXPECT_EQ(registry.stats().handles, 0u);
}

TEST(HandleRegistry, SnapshotListsMostRecentlyUsedFirst) {
  HandleRegistry registry(8);
  registry.put("a", compile_suite("c17"));
  registry.put("b", compile_suite("parity8"));
  EXPECT_TRUE(registry.find("a").has_value());
  const std::vector<HandleInfo> handles = registry.snapshot();
  ASSERT_EQ(handles.size(), 2u);
  EXPECT_EQ(handles[0].name, "a");
  EXPECT_EQ(handles[1].name, "b");
}

TEST(HandleRegistry, ReplacingANameKeepsOneEntry) {
  HandleRegistry registry(8);
  registry.put("a", compile_suite("c17"));
  registry.put("a", compile_suite("mult4"));
  const auto entry = registry.find("a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->circuit.name(), compile_suite("mult4").name());
  EXPECT_EQ(registry.stats().handles, 1u);
}

// ---- result cache --------------------------------------------------------

analysis::AnalysisResult make_ok_result(const std::string& name,
                                        double value) {
  analysis::AnalysisResult result;
  result.name = name;
  result.kind = analysis::AnalysisKind::kActivity;
  result.ok = true;
  result.metrics = {{"avg_gate_toggle_rate", value}};
  return result;
}

TEST(ResultCache, HitRelabelsNameAndIndex) {
  ResultCache cache(8);
  EXPECT_FALSE(cache.find("k1", "first", 0).has_value());
  cache.store("k1", make_ok_result("first", 0.5));

  const auto hit = cache.find("k1", "renamed", 7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "renamed");
  EXPECT_EQ(hit->index, 7u);
  EXPECT_EQ(hit->metric("avg_gate_toggle_rate"), 0.5);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedAboveCapacity) {
  ResultCache cache(2);
  cache.store("a", make_ok_result("a", 1.0));
  cache.store("b", make_ok_result("b", 2.0));
  EXPECT_TRUE(cache.find("a", "a", 0).has_value());  // b becomes LRU
  cache.store("c", make_ok_result("c", 3.0));

  EXPECT_TRUE(cache.find("a", "a", 0).has_value());
  EXPECT_FALSE(cache.find("b", "b", 0).has_value());
  EXPECT_TRUE(cache.find("c", "c", 0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, DuplicateStoreKeepsOneEntry) {
  ResultCache cache(8);
  cache.store("k", make_ok_result("x", 1.0));
  cache.store("k", make_ok_result("y", 1.0));  // equal by contract
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().stores, 2u);
}

TEST(ResultCache, ClearDropsEverything) {
  ResultCache cache(8);
  cache.store("a", make_ok_result("a", 1.0));
  cache.store("b", make_ok_result("b", 2.0));
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.find("a", "a", 0).has_value());
}

// ---- cache keys ----------------------------------------------------------

TEST(ResultCacheKey, DependsOnContentNotHandleIdentity) {
  analysis::AnalysisRequest a;
  a.name = "first";
  a.circuit = compile_suite("c17");
  a.options = analysis::ActivityRequest{};
  analysis::AnalysisRequest b;
  b.name = "second";  // the display name is not part of the key
  b.circuit = compile_suite("c17");  // distinct handle, same content
  b.options = analysis::ActivityRequest{};
  EXPECT_EQ(result_cache_key(a), result_cache_key(b));

  b.circuit = compile_suite("mult4");
  EXPECT_NE(result_cache_key(a), result_cache_key(b));
}

TEST(ResultCacheKey, DistinguishesGoldenAndOptions) {
  analysis::AnalysisRequest base;
  base.circuit = compile_suite("c17");
  base.options = analysis::ReliabilityRequest{};
  const std::string key = result_cache_key(base);

  analysis::AnalysisRequest with_golden = base;
  with_golden.golden = compile_suite("c17");
  EXPECT_NE(result_cache_key(with_golden), key);

  analysis::AnalysisRequest other_options = base;
  analysis::ReliabilityRequest spec;
  spec.options.seed = 1234;
  other_options.options = spec;
  EXPECT_NE(result_cache_key(other_options), key);
}

TEST(ResultCacheKey, EmptyHandleOverrideRequestsWork) {
  analysis::EnergyBoundRequest spec;
  core::CircuitProfile profile;
  profile.name = "p";
  profile.size_s0 = 12.0;
  profile.depth_d0 = 3;
  profile.avg_fanin_k = 2.0;
  profile.avg_activity_sw0 = 0.25;
  profile.sensitivity_s = 2.0;
  spec.profile_override = profile;
  analysis::AnalysisRequest request;
  request.name = "override";
  request.options = spec;  // empty circuit handle
  const std::string key = result_cache_key(request);
  EXPECT_FALSE(key.empty());

  spec.profile_override->size_s0 = 13.0;
  request.options = spec;
  EXPECT_NE(result_cache_key(request), key);
}

}  // namespace
}  // namespace enb::serve
