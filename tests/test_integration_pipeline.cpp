// End-to-end integration: generator -> mapper -> profile -> bounds, the full
// Section 6 flow, plus the redundancy baselines feeding the bound checker.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "core/validate_bounds.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"
#include "report/ascii_chart.hpp"
#include "sim/reliability.hpp"
#include "synth/mapper.hpp"

namespace enb {
namespace {

core::CircuitProfile mapped_profile(const gen::BenchmarkSpec& spec) {
  const netlist::Circuit base = spec.build();
  const synth::MapResult mapped = synth::map_to_library(base, {});
  core::ProfileOptions options;
  options.activity_pairs = 1 << 11;
  return core::extract_profile(mapped.circuit, options);
}

TEST(IntegrationPipeline, SmallSuiteEndToEnd) {
  for (const gen::BenchmarkSpec& spec : gen::small_suite()) {
    const core::CircuitProfile profile = mapped_profile(spec);
    EXPECT_GT(profile.size_s0, 0.0) << spec.name;
    EXPECT_GT(profile.avg_activity_sw0, 0.0) << spec.name;
    EXPECT_LT(profile.avg_activity_sw0, 1.0) << spec.name;
    EXPECT_GE(profile.sensitivity_s, 1.0) << spec.name;
    EXPECT_LE(profile.max_fanin, 3) << spec.name;

    for (double eps : {0.001, 0.01, 0.1}) {
      const core::BoundReport r = core::analyze(profile, eps, 0.01);
      EXPECT_GE(r.energy.total_factor, 1.0)
          << spec.name << " eps=" << eps;
      EXPECT_TRUE(std::isfinite(r.energy.total_factor)) << spec.name;
    }
  }
}

TEST(IntegrationPipeline, BoundsGrowWithEpsilonAcrossSuite) {
  for (const gen::BenchmarkSpec& spec : gen::small_suite()) {
    const core::CircuitProfile profile = mapped_profile(spec);
    double prev = 0.0;
    for (double eps : {0.001, 0.01, 0.1}) {
      const core::BoundReport r = core::analyze(profile, eps, 0.01);
      EXPECT_GT(r.energy.total_factor, prev) << spec.name << " eps=" << eps;
      prev = r.energy.total_factor;
    }
  }
}

TEST(IntegrationPipeline, DelayBoundDependsOnlyOnFanin) {
  // Two very different circuits mapped to the same library should get delay
  // bounds that match whenever their average fanins match.
  const core::CircuitProfile a = mapped_profile(gen::find_benchmark("rca8"));
  core::CircuitProfile b = mapped_profile(gen::find_benchmark("parity8"));
  b.avg_fanin_k = a.avg_fanin_k;  // force equal fanin
  const auto ra = core::analyze(a, 0.01, 0.01);
  const auto rb = core::analyze(b, 0.01, 0.01);
  EXPECT_NEAR(ra.metrics.delay, rb.metrics.delay, 1e-12);
}

TEST(IntegrationPipeline, TmrPointRespectsTheorem2OnSuite) {
  for (const gen::BenchmarkSpec& spec : gen::small_suite()) {
    const netlist::Circuit base = spec.build();
    const core::CircuitProfile profile = core::extract_profile(base);
    const ft::NmrResult tmr = ft::nmr_transform(base);
    const double eps = 0.01;
    sim::ReliabilityOptions options;
    options.trials = 1 << 14;
    const auto rel =
        sim::estimate_reliability_vs(tmr.circuit, base, eps, options);
    core::EmpiricalPoint point;
    point.scheme = "tmr";
    point.total_gates = static_cast<double>(tmr.circuit.gate_count());
    point.delta_hat = rel.delta_hat;
    point.delta_ci_high = rel.ci_high;
    const core::BoundCheck check = core::check_point(profile, eps, point);
    EXPECT_TRUE(check.consistent) << spec.name;
  }
}

TEST(IntegrationPipeline, SweepRendersToChartAndTable) {
  const core::CircuitProfile profile =
      core::make_profile("parity10", 10, 21, 0.5, 2, 10);
  const auto grid = core::log_grid(0.001, 0.1, 8);
  const auto reports = core::sweep_epsilon(profile, grid, 0.01);
  report::Series energy("energy", {}, {});
  for (const auto& r : reports) energy.push(r.epsilon, r.energy.total_factor);
  report::ChartOptions options;
  options.log_x = true;
  const std::string chart = report::line_chart({energy}, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(IntegrationPipeline, MappingChangesProfileNotFunction) {
  const auto spec = gen::find_benchmark("mult4");
  const netlist::Circuit base = spec.build();
  synth::MapOptions options;
  options.library = synth::Library::generic(2);
  const synth::MapResult mapped = synth::map_to_library(base, options);
  EXPECT_TRUE(mapped.verified);
  const core::CircuitProfile pb = core::extract_profile(base);
  const core::CircuitProfile pm = core::extract_profile(mapped.circuit);
  // Function-level quantities survive mapping; structural ones move.
  EXPECT_EQ(pb.sensitivity_s, pm.sensitivity_s);
  EXPECT_EQ(pb.num_inputs, pm.num_inputs);
  EXPECT_LE(pm.max_fanin, 2);
}

}  // namespace
}  // namespace enb
