#include "gen/alu.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

using netlist::Circuit;

struct AluOut {
  std::uint64_t y = 0;
  bool cout = false;
  bool zero = false;
};

AluOut run_alu(const Circuit& c, int bits, std::uint64_t a, std::uint64_t b,
               int op) {
  std::vector<bool> in;
  for (int i = 0; i < bits; ++i) in.push_back(((a >> i) & 1U) != 0);
  for (int i = 0; i < bits; ++i) in.push_back(((b >> i) & 1U) != 0);
  for (int i = 0; i < 3; ++i) in.push_back(((op >> i) & 1) != 0);
  const auto out = sim::eval_single(c, in);
  AluOut result;
  for (int i = 0; i < bits; ++i) {
    if (out[static_cast<std::size_t>(i)]) result.y |= std::uint64_t{1} << i;
  }
  result.cout = out[static_cast<std::size_t>(bits)];
  result.zero = out[static_cast<std::size_t>(bits) + 1];
  return result;
}

// op encodings (op0 = bit0): ADD = 0b000, SUB = 0b001, AND = 0b010,
// OR = 0b011, XOR = 0b110.
constexpr int kAdd = 0b000;
constexpr int kSub = 0b001;
constexpr int kAnd = 0b010;
constexpr int kOr = 0b011;
constexpr int kXor = 0b110;

TEST(Alu, FourBitAddExhaustive) {
  const Circuit c = alu(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const AluOut out = run_alu(c, 4, a, b, kAdd);
      EXPECT_EQ(out.y, (a + b) & 0xF) << a << "+" << b;
      EXPECT_EQ(out.cout, (a + b) > 0xF);
    }
  }
}

TEST(Alu, FourBitSubExhaustive) {
  const Circuit c = alu(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const AluOut out = run_alu(c, 4, a, b, kSub);
      EXPECT_EQ(out.y, (a - b) & 0xF) << a << "-" << b;
      EXPECT_EQ(out.cout, a >= b);  // no borrow
    }
  }
}

TEST(Alu, LogicOps) {
  const Circuit c = alu(8);
  const std::uint64_t a = 0xA5;
  const std::uint64_t b = 0x3C;
  EXPECT_EQ(run_alu(c, 8, a, b, kAnd).y, a & b);
  EXPECT_EQ(run_alu(c, 8, a, b, kOr).y, a | b);
  EXPECT_EQ(run_alu(c, 8, a, b, kXor).y, a ^ b);
}

TEST(Alu, ZeroFlag) {
  const Circuit c = alu(4);
  EXPECT_TRUE(run_alu(c, 4, 5, 5, kSub).zero);
  EXPECT_FALSE(run_alu(c, 4, 5, 4, kSub).zero);
  EXPECT_TRUE(run_alu(c, 4, 0, 0, kAdd).zero);
  EXPECT_TRUE(run_alu(c, 4, 0xA, 0x5, kAnd).zero);
}

TEST(Alu, InterfaceShape) {
  const Circuit c = alu(8);
  EXPECT_EQ(c.num_inputs(), 8u + 8u + 3u);
  EXPECT_EQ(c.num_outputs(), 8u + 2u);
}

TEST(Alu, RejectBadArgs) {
  EXPECT_THROW((void)alu(0), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
