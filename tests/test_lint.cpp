// Netlist linter: every seeded defect class must surface as a typed
// diagnostic (rule id + site), every shipped circuit — gen/ suites and the
// ft/ redundancy variants — must lint with zero errors, and the lint kind
// must ride the analysis request/batch plumbing like any other analysis.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"

namespace enb::analysis {
namespace {

using netlist::Circuit;
using netlist::GateType;

std::optional<LintDiagnostic> find_rule(const LintReport& report,
                                        LintRule rule) {
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == rule) return d;
  }
  return std::nullopt;
}

std::size_t count_rule(const LintReport& report, LintRule rule) {
  std::size_t count = 0;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == rule) ++count;
  }
  return count;
}

TEST(Lint, RuleIdsAreStableKebabCase) {
  EXPECT_STREQ(to_string(LintRule::kSyntax), "syntax");
  EXPECT_STREQ(to_string(LintRule::kCycle), "cycle");
  EXPECT_STREQ(to_string(LintRule::kUndrivenNet), "undriven-net");
  EXPECT_STREQ(to_string(LintRule::kMultiDrivenNet), "multi-driven-net");
  EXPECT_STREQ(to_string(LintRule::kZeroFaninGate), "zero-fanin-gate");
  EXPECT_STREQ(to_string(LintRule::kDuplicateName), "duplicate-name");
  EXPECT_STREQ(to_string(LintRule::kNoOutputs), "no-outputs");
  EXPECT_STREQ(to_string(LintRule::kVoterReplicas), "voter-replicas");
  EXPECT_STREQ(to_string(LintRule::kFloatingOutput), "floating-output");
  EXPECT_STREQ(to_string(LintRule::kUnreachable), "unreachable");
  EXPECT_STREQ(to_string(LintRule::kUnusedInput), "unused-input");
  EXPECT_STREQ(to_string(LintRule::kExhaustiveCap), "exhaustive-cap");
  EXPECT_STREQ(to_string(LintRule::kConstantNet), "constant-net");
  EXPECT_STREQ(to_string(LintRule::kRedundantGate), "redundant-gate");
  EXPECT_STREQ(to_string(LintRule::kUntestableFault), "untestable-fault");
  EXPECT_STREQ(to_string(LintSeverity::kError), "error");
  EXPECT_STREQ(to_string(LintSeverity::kWarning), "warning");
}

TEST(Lint, CleanCircuitProducesNoDiagnostics) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  const LintReport report = lint_circuit(c17);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.nodes, c17.node_count());
}

// ---- source-level defect classes -----------------------------------------

TEST(Lint, CombinationalCycleIsReportedWithItsPath) {
  const LintReport report = lint_bench_text(
      "INPUT(x)\n"
      "OUTPUT(a)\n"
      "a = AND(b, x)\n"
      "b = OR(a, x)\n");
  const auto d = find_rule(report, LintRule::kCycle);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, LintSeverity::kError);
  EXPECT_EQ(d->site, "a");
  EXPECT_NE(d->message.find("a -> b -> a"), std::string::npos) << d->message;
  EXPECT_FALSE(report.clean());
}

TEST(Lint, UndrivenNetIsAnError) {
  const LintReport report = lint_bench_text(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "y = AND(a, ghost)\n");
  const auto d = find_rule(report, LintRule::kUndrivenNet);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, "ghost");
  EXPECT_EQ(d->severity, LintSeverity::kError);
}

TEST(Lint, MultiDrivenNetIsAnError) {
  const LintReport report = lint_bench_text(
      "INPUT(a)\n"
      "INPUT(b)\n"
      "OUTPUT(y)\n"
      "y = AND(a, b)\n"
      "y = OR(a, b)\n");
  const auto d = find_rule(report, LintRule::kMultiDrivenNet);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, "y");

  // A definition colliding with an INPUT declaration is the same defect.
  const LintReport redeclared = lint_bench_text(
      "INPUT(a)\n"
      "INPUT(b)\n"
      "OUTPUT(a)\n"
      "a = NOT(b)\n");
  EXPECT_TRUE(find_rule(redeclared, LintRule::kMultiDrivenNet).has_value());
}

TEST(Lint, ZeroFaninGateIsAnErrorButConstantsAreNot) {
  const LintReport report = lint_bench_text(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "g = AND()\n"
      "k = CONST0()\n"
      "y = OR(a, g)\n");
  const auto d = find_rule(report, LintRule::kZeroFaninGate);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, "g");
  EXPECT_NE(d->message.find("AND"), std::string::npos) << d->message;
}

TEST(Lint, SyntaxErrorsNameTheLine) {
  const LintReport garbage = lint_bench_text(
      "INPUT(a)\n"
      "this is not bench\n");
  const auto d = find_rule(garbage, LintRule::kSyntax);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, "line 2");

  // Sequential elements are outside the combinational IR's scope.
  const LintReport dff = lint_bench_text(
      "INPUT(d)\n"
      "OUTPUT(q)\n"
      "q = DFF(d)\n");
  const auto seq = find_rule(dff, LintRule::kSyntax);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(seq->site, "line 3");
  EXPECT_NE(seq->message.find("DFF"), std::string::npos) << seq->message;
}

TEST(Lint, NoOutputsIsAnError) {
  const LintReport report = lint_bench_text(
      "INPUT(a)\n"
      "g = NOT(a)\n");
  EXPECT_TRUE(find_rule(report, LintRule::kNoOutputs).has_value());
}

// ---- circuit-level defect classes ----------------------------------------

TEST(Lint, DuplicateNodeNameIsAnError) {
  Circuit c("dup");
  const auto a = c.add_input("a");
  const auto b = c.add_input("a");  // same explicit name
  c.add_output(c.add_gate(GateType::kAnd, a, b), "y");
  const LintReport report = lint_circuit(c);
  const auto d = find_rule(report, LintRule::kDuplicateName);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, "a");
  EXPECT_EQ(d->severity, LintSeverity::kError);
}

TEST(Lint, VoterWithDuplicatedDriverIsASuppressibleWarning) {
  // Not an error: multiplex restorative stages legitimately route one bundle
  // wire into several voter slots, so structure alone cannot prove a defect.
  Circuit c("badvote");
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  c.add_output(c.add_gate(GateType::kMaj, a, a, b), "v");
  const LintReport report = lint_circuit(c);
  const auto d = find_rule(report, LintRule::kVoterReplicas);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_NE(d->message.find("2 distinct"), std::string::npos) << d->message;
  EXPECT_TRUE(report.clean());

  LintOptions allow;
  allow.allow_voter_replicas = true;
  EXPECT_EQ(count_rule(lint_circuit(c, allow), LintRule::kVoterReplicas), 0u);

  // A proper 3-replica vote is fine.
  Circuit ok("goodvote");
  const auto x = ok.add_input("x");
  const auto y = ok.add_input("y");
  const auto z = ok.add_input("z");
  ok.add_output(ok.add_gate(GateType::kMaj, x, y, z), "v");
  EXPECT_TRUE(lint_circuit(ok).clean());
}

TEST(Lint, DeadLogicAndUnusedInputsAreWarnings) {
  Circuit c("dead");
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  c.add_input("spare");  // never used
  const auto live = c.add_gate(GateType::kAnd, a, b);
  const auto feeder = c.add_gate(GateType::kNot, a);    // feeds only `sink`
  const auto sink = c.add_gate(GateType::kOr, feeder, b);  // floats
  (void)sink;
  c.add_output(live, "y");
  c.set_node_name(feeder, "feeder");
  c.set_node_name(sink, "sink");

  const LintReport report = lint_circuit(c);
  EXPECT_TRUE(report.clean());  // dead logic is suspect, not fatal
  EXPECT_EQ(report.warnings(), 4u);
  const auto floating = find_rule(report, LintRule::kFloatingOutput);
  ASSERT_TRUE(floating.has_value());
  EXPECT_EQ(floating->site, "sink");
  const auto unreachable = find_rule(report, LintRule::kUnreachable);
  ASSERT_TRUE(unreachable.has_value());
  EXPECT_EQ(unreachable->site, "feeder");
  const auto unused = find_rule(report, LintRule::kUnusedInput);
  ASSERT_TRUE(unused.has_value());
  EXPECT_EQ(unused->site, "spare");
  // Dead logic is also statically untestable — the semantic summary rule
  // agrees with the structural ones.
  EXPECT_TRUE(find_rule(report, LintRule::kUntestableFault).has_value());
}

TEST(Lint, ExhaustiveCapWarningTracksTheOption) {
  const Circuit c17 = gen::find_benchmark("c17").build();  // 5 inputs
  EXPECT_EQ(count_rule(lint_circuit(c17), LintRule::kExhaustiveCap), 0u);

  LintOptions tight;
  tight.exhaustive_cap = 4;
  const LintReport report = lint_circuit(c17, tight);
  const auto d = find_rule(report, LintRule::kExhaustiveCap);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_NE(d->message.find("ExhaustiveCapError"), std::string::npos)
      << d->message;
}

TEST(Lint, ErrorsSortBeforeWarnings) {
  Circuit c("mixed");
  const auto a = c.add_input("a");
  const auto b = c.add_input("a");  // duplicate name -> error
  (void)c.add_gate(GateType::kNot, a);  // floating -> warning
  c.add_output(c.add_gate(GateType::kAnd, a, b), "v");
  const LintReport report = lint_circuit(c);
  ASSERT_GE(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics.front().severity, LintSeverity::kError);
  EXPECT_EQ(report.diagnostics.back().severity, LintSeverity::kWarning);
}

TEST(Lint, TextRendererSummarizesCounts) {
  Circuit c("r");
  const auto a = c.add_input("a");
  const auto b = c.add_input("a");  // duplicate name -> error
  const auto v = c.add_gate(GateType::kAnd, a, b);
  c.set_node_name(v, "v");
  c.add_output(v, "v");
  std::ostringstream out;
  write_lint_text(out, lint_circuit(c));
  EXPECT_NE(out.str().find("error[duplicate-name] a:"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("1 errors, 0 warnings"), std::string::npos)
      << out.str();
}

// ---- shipped circuits lint clean -----------------------------------------

TEST(Lint, StandardAndScaleSuitesLintWithZeroErrors) {
  for (const std::vector<gen::BenchmarkSpec>& suite :
       {gen::standard_suite(), gen::scale_suite()}) {
    for (const gen::BenchmarkSpec& spec : suite) {
      const Circuit circuit = spec.build();
      const LintReport report = lint_circuit(circuit);
      EXPECT_EQ(report.errors(), 0u) << spec.name;
      // Structural warnings must not fire on suite circuits. The semantic
      // rules may: carry-select adders genuinely duplicate the propagate/
      // generate logic of their speculative halves (redundant-gate) and fix
      // a speculative carry-in at a constant (constant-net), and constants
      // feed untestable classes — those findings are proofs, not noise. The
      // exhaustive cap warns on wide circuits as before.
      for (const LintDiagnostic& d : report.diagnostics) {
        EXPECT_TRUE(d.rule == LintRule::kExhaustiveCap ||
                    d.rule == LintRule::kConstantNet ||
                    d.rule == LintRule::kRedundantGate ||
                    d.rule == LintRule::kUntestableFault)
            << spec.name << ": " << d.message;
      }
      EXPECT_EQ(
          count_rule(report, LintRule::kExhaustiveCap),
          circuit.num_inputs() > 20 ? 1u : 0u)
          << spec.name;
    }
  }
}

TEST(Lint, BenchRoundTripOfTheStandardSuiteLintsClean) {
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const std::string text = netlist::write_bench_string(spec.build());
    const LintReport report = lint_bench_text(text, spec.name);
    EXPECT_EQ(report.errors(), 0u) << spec.name;
  }
}

TEST(Lint, FaultToleranceVariantsLintWithZeroErrors) {
  for (const gen::BenchmarkSpec& spec : gen::small_suite()) {
    const Circuit base = spec.build();
    for (const ft::VoterStyle style :
         {ft::VoterStyle::kMajGate, ft::VoterStyle::kTwoInput}) {
      ft::NmrOptions options;
      options.voter = style;
      const LintReport report =
          lint_circuit(ft::nmr_transform(base, options).circuit);
      EXPECT_EQ(report.errors(), 0u) << spec.name;
    }
  }
  const Circuit c17 = gen::find_benchmark("c17").build();
  EXPECT_EQ(lint_circuit(ft::cascaded_tmr(c17, 2)).errors(), 0u);

  // Von Neumann multiplexing picks restorative triples with replacement by
  // design, so voter-replicas may legitimately fire — and bundling
  // multiplies the input count past the exhaustive cap. Redundancy variants
  // also trip the semantic rules by construction (replicas are structurally
  // identical logic). Nothing structural beyond that may fire.
  const LintReport mux =
      lint_circuit(ft::multiplex_transform(c17).circuit);
  for (const LintDiagnostic& d : mux.diagnostics) {
    EXPECT_TRUE(d.rule == LintRule::kVoterReplicas ||
                d.rule == LintRule::kExhaustiveCap ||
                d.rule == LintRule::kConstantNet ||
                d.rule == LintRule::kRedundantGate ||
                d.rule == LintRule::kUntestableFault)
        << d.message;
  }
  EXPECT_EQ(mux.errors(), 0u);

  // With the replica convention acknowledged, the multiplex variant lints
  // with no voter-replicas noise at all — the PR-7 false positive.
  LintOptions allow;
  allow.allow_voter_replicas = true;
  const LintReport quiet =
      lint_circuit(ft::multiplex_transform(c17).circuit, allow);
  EXPECT_EQ(count_rule(quiet, LintRule::kVoterReplicas), 0u);
}

// ---- analysis-layer integration ------------------------------------------

TEST(Lint, RidesTheAnalysisRequestVocabulary) {
  EXPECT_EQ(parse_analysis_kind("lint"), AnalysisKind::kLint);
  EXPECT_STREQ(to_string(AnalysisKind::kLint), "lint");
  EXPECT_EQ(canonical_spec(LintRequest{}),
            "lint exhaustive_cap=20 allow_voter_replicas=0");

  AnalysisRequest request;
  request.name = "chk";
  request.circuit = compile(gen::find_benchmark("c17").build());
  request.options = LintRequest{};
  EXPECT_EQ(request.kind(), AnalysisKind::kLint);

  const AnalysisResult result = evaluate(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.kind, AnalysisKind::kLint);
  const LintReport* report = result.get<LintReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(result.metric("errors"), 0.0);
  EXPECT_EQ(result.metric("warnings"), 0.0);
  EXPECT_EQ(result.metric("nodes"),
            static_cast<double>(report->nodes));
}

TEST(Lint, RidesTheBatchManifest) {
  std::istringstream manifest(
      "chk kind=lint circuit=c17\n"
      "wide kind=lint circuit=rca256\n");
  std::vector<AnalysisRequest> requests = exec::parse_manifest_requests(
      manifest, [](const std::string& spec) {
        return compile(gen::build_circuit_spec(spec));
      });
  ASSERT_EQ(requests.size(), 2u);
  const std::vector<AnalysisResult> results =
      exec::evaluate_requests(std::move(requests));
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].metric("errors"), 0.0);
  ASSERT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(results[1].metric("errors"), 0.0);
  EXPECT_EQ(results[1].metric("warnings"), 1.0);  // exhaustive-cap

  // The fault-campaign-only manifest keys stay rejected for lint jobs.
  std::istringstream bad("chk kind=lint circuit=c17 mode=exhaustive\n");
  EXPECT_THROW((void)exec::parse_manifest_requests(
                   bad,
                   [](const std::string& spec) {
                     return compile(gen::build_circuit_spec(spec));
                   }),
               std::invalid_argument);
}

TEST(Lint, FailedLintRequestReportsNotThrows) {
  AnalysisRequest request;
  request.name = "empty";
  request.options = LintRequest{};  // empty circuit handle
  const AnalysisResult result = evaluate(request);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace enb::analysis
