// Property suite for src/harden/: every emitted variant is proved
// output-equivalent to its base and lints clean across all styles and
// granularities; the redundancy does what each style promises under single
// stuck-at faults (TMR masks replica-internal faults, DWC flags duplicated-
// region faults on its check outputs — cross-checked fault by fault with the
// scalar reference simulator); and the Pareto sweep emits a genuinely
// non-dominated frontier that is bit-identical for any thread count.
//
// The selective-vs-uniform pin at the end is the subsystem's reason to
// exist: campaign-ranked selective hardening at no more area than uniform
// TMR keeps strictly more fault observability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "exec/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_sim.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "harden/pareto.hpp"
#include "harden/transform.hpp"
#include "harden/types.hpp"
#include "netlist/circuit.hpp"
#include "sim/logic_sim.hpp"

namespace enb::harden {
namespace {

using netlist::Circuit;
using netlist::NodeId;

constexpr Style kStyles[] = {Style::kTmr, Style::kDwc, Style::kSelective};
constexpr Granularity kGranularities[] = {
    Granularity::kGate, Granularity::kCone, Granularity::kOutput};

// One shared c17 sweep with the subsystem's default options — several tests
// below assert different properties of the same deterministic result.
const ParetoResult& c17_sweep() {
  static const ParetoResult result =
      pareto_sweep(analysis::compile(gen::c17()), SweepOptions{});
  return result;
}

const Candidate* find_candidate(const ParetoResult& result,
                                const std::string& label) {
  const auto it = std::find_if(
      result.candidates.begin(), result.candidates.end(),
      [&label](const Candidate& c) { return c.label == label; });
  return it == result.candidates.end() ? nullptr : &*it;
}

// j strictly dominates i over (energy_factor down, protection up,
// gates down).
bool dominates(const Candidate& j, const Candidate& i) {
  const bool no_worse = j.energy_factor <= i.energy_factor &&
                        j.protection >= i.protection && j.gates <= i.gates;
  const bool strictly_better = j.energy_factor < i.energy_factor ||
                               j.protection > i.protection ||
                               j.gates < i.gates;
  return no_worse && strictly_better;
}

TEST(Harden, EveryVariantIsEquivalentAndLintCleanAcrossTheStandardSuite) {
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const Circuit base = spec.build();
    for (const Style style : kStyles) {
      for (const Granularity granularity : kGranularities) {
        TransformOptions options;
        options.style = style;
        options.granularity = granularity;
        if (style == Style::kSelective) options.top_k = 1;
        const HardenedCircuit variant = harden_transform(base, options);
        const std::string what = spec.name + std::string(" ") +
                                 to_string(style) + "/" +
                                 to_string(granularity);
        EXPECT_EQ(variant.base_outputs, base.num_outputs()) << what;
        const analysis::CecResult proof = verify_hardened(base, variant);
        EXPECT_TRUE(proof.equivalent) << what;
        EXPECT_FALSE(proof.inconclusive) << what;
        EXPECT_TRUE(lint_hardened(variant).clean()) << what;
      }
    }
  }
}

TEST(Harden, TmrMasksEverySingleReplicaFault) {
  // Whole-circuit TMR of c17: the replica fabric occupies the node range
  // right after the inputs (three appended copies of the base gates). Every
  // stuck-at inside it must be invisible on every input assignment — checked
  // against the scalar reference simulator, one fault and one pattern at a
  // time, with the base circuit supplying the golden responses.
  const Circuit base = gen::c17();
  TransformOptions options;
  options.style = Style::kTmr;
  options.granularity = Granularity::kOutput;
  const HardenedCircuit variant = harden_transform(base, options);

  const NodeId replica_begin = static_cast<NodeId>(base.num_inputs());
  const NodeId replica_end =
      static_cast<NodeId>(base.num_inputs() + 3 * base.gate_count());

  const fault::FaultUniverse universe =
      fault::FaultUniverse::build(variant.circuit, /*collapse=*/true);
  fault::ScalarFaultSim scalar(variant.circuit, universe);

  std::vector<std::uint32_t> replica_classes;
  for (std::size_t s = 0; s < universe.num_sites(); ++s) {
    const fault::FaultSite& site = universe.site(s);
    if (site.node < replica_begin || site.node >= replica_end) continue;
    replica_classes.push_back(universe.class_of(s));
  }
  std::sort(replica_classes.begin(), replica_classes.end());
  replica_classes.erase(
      std::unique(replica_classes.begin(), replica_classes.end()),
      replica_classes.end());
  // The sweep really covers the three replicas' own fault classes.
  EXPECT_GE(replica_classes.size(), 3 * base.gate_count());

  std::vector<bool> pattern(base.num_inputs());
  for (std::uint32_t v = 0; v < (1u << base.num_inputs()); ++v) {
    for (std::size_t i = 0; i < base.num_inputs(); ++i) {
      pattern[i] = ((v >> i) & 1u) != 0;
    }
    const std::vector<bool> expected = sim::eval_single(base, pattern);
    for (const std::uint32_t cls : replica_classes) {
      EXPECT_FALSE(scalar.detect(cls, pattern, expected))
          << "replica fault class " << cls << " escaped the voters on "
          << "assignment " << v;
    }
  }
}

TEST(Harden, DwcComparatorFlagsEveryDuplicatedRegionFault) {
  // Whole-circuit DWC of c17: the duplicate copy sits right after the cloned
  // base nodes. A fault there never touches a primary output (copy A drives
  // them), so the comparator check outputs are its only witnesses — and they
  // must catch every one (c17 exposes its whole collapsed universe, so no
  // duplicate fault is untestable at its cone output).
  const Circuit base = gen::c17();
  TransformOptions options;
  options.style = Style::kDwc;
  options.granularity = Granularity::kOutput;
  const HardenedCircuit variant = harden_transform(base, options);
  ASSERT_EQ(variant.check_outputs, base.num_outputs());

  const NodeId duplicate_begin = static_cast<NodeId>(base.node_count());
  const NodeId duplicate_end =
      static_cast<NodeId>(base.node_count() + base.gate_count());

  fault::CampaignOptions campaign;
  campaign.exhaustive = true;
  const fault::FaultUniverse universe =
      fault::FaultUniverse::build(variant.circuit, campaign.collapse);
  const fault::FaultCampaignResult result =
      fault::run_campaign(variant.circuit, nullptr, campaign);
  ASSERT_EQ(result.detection_counts.size(), universe.num_classes());

  std::size_t duplicate_sites = 0;
  for (std::size_t s = 0; s < universe.num_sites(); ++s) {
    const fault::FaultSite& site = universe.site(s);
    if (site.node < duplicate_begin || site.node >= duplicate_end) continue;
    ++duplicate_sites;
    const std::uint32_t cls = universe.class_of(s);
    EXPECT_NE(result.detection_counts[cls], 0u)
        << "duplicate fault " << to_string(site.value) << " on node "
        << site.node << " was never flagged";
    EXPECT_GE(result.first_detect_output[cls], variant.base_outputs)
        << "duplicate fault " << to_string(site.value) << " on node "
        << site.node << " reached a primary output";
  }
  EXPECT_GE(duplicate_sites, 2 * base.gate_count());
}

TEST(Harden, RankOutputConesIsAPermutationBackedByDetectEvidence) {
  const Circuit base = gen::find_benchmark("rca8").build();
  fault::CampaignOptions campaign;
  campaign.exhaustive = false;
  campaign.patterns = 128;
  const fault::FaultCampaignResult result =
      fault::run_campaign(base, nullptr, campaign);
  const std::vector<std::size_t> order = rank_output_cones(base, result);
  ASSERT_EQ(order.size(), base.num_outputs());
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t pos = 0; pos < sorted.size(); ++pos) {
    EXPECT_EQ(sorted[pos], pos);
  }
}

TEST(Harden, EnumerateCandidatesSweepsAxesAndRespectsPins) {
  SweepOptions options;
  // c17 has 2 outputs: the selective K ladder is just {1}, so the full sweep
  // is 3 TMR + 3 DWC + 3 selective configs.
  EXPECT_EQ(enumerate_candidates(2, options).size(), 9u);
  // 8 outputs: ladder {1, 2, 4} -> 3 + 3 + 9.
  EXPECT_EQ(enumerate_candidates(8, options).size(), 15u);

  options.style = Style::kDwc;
  options.granularity = Granularity::kOutput;
  const std::vector<TransformOptions> pinned =
      enumerate_candidates(8, options);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].style, Style::kDwc);
  EXPECT_EQ(pinned[0].granularity, Granularity::kOutput);

  options.style = Style::kSelective;
  options.granularity.reset();
  options.top_k = 5;
  const std::vector<TransformOptions> pinned_k =
      enumerate_candidates(8, options);
  ASSERT_EQ(pinned_k.size(), 3u);
  for (const TransformOptions& config : pinned_k) {
    EXPECT_EQ(config.style, Style::kSelective);
    EXPECT_EQ(config.top_k, 5u);
  }
}

TEST(Harden, SweepProvesEveryCandidateAndEmitsANonDominatedFrontier) {
  const ParetoResult& result = c17_sweep();
  ASSERT_EQ(result.candidates.size(), 10u);  // baseline + 9 configs
  EXPECT_EQ(result.candidates[0].label, "base");
  EXPECT_FALSE(result.candidates[0].hardened);
  EXPECT_EQ(result.refuted, 0u);
  EXPECT_EQ(result.lint_errors, 0u);
  for (const Candidate& candidate : result.candidates) {
    EXPECT_TRUE(candidate.equivalent) << candidate.label;
    EXPECT_TRUE(candidate.lint_clean) << candidate.label;
    EXPECT_GT(candidate.gates, 0u) << candidate.label;
    EXPECT_GT(candidate.energy_factor, 0.0) << candidate.label;
  }

  ASSERT_FALSE(result.frontier.empty());
  EXPECT_TRUE(std::is_sorted(result.frontier.begin(), result.frontier.end()));
  for (const std::uint32_t index : result.frontier) {
    ASSERT_LT(index, result.candidates.size());
    EXPECT_TRUE(result.candidates[index].on_frontier);
  }
  // No frontier point is strictly dominated by any candidate, and every
  // eligible point left off the frontier is dominated (or exactly tied to an
  // earlier candidate) by someone.
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const Candidate& ci = result.candidates[i];
    if (ci.on_frontier) {
      for (const Candidate& cj : result.candidates) {
        EXPECT_FALSE(dominates(cj, ci)) << cj.label << " vs " << ci.label;
      }
      continue;
    }
    bool covered = false;
    for (std::size_t j = 0; j < result.candidates.size() && !covered; ++j) {
      if (j == i) continue;
      const Candidate& cj = result.candidates[j];
      const bool no_worse = cj.energy_factor <= ci.energy_factor &&
                            cj.protection >= ci.protection &&
                            cj.gates <= ci.gates;
      covered = no_worse && (dominates(cj, ci) || j < i);
    }
    EXPECT_TRUE(covered) << ci.label << " is off the frontier undominated";
  }
}

TEST(Harden, SweepIsBitIdenticalForAnyThreadCount) {
  const ParetoResult& baseline = c17_sweep();
  const analysis::CompiledCircuit handle = analysis::compile(gen::c17());
  EXPECT_EQ(pareto_sweep(handle, SweepOptions{}, exec::Parallelism::serial()),
            baseline);
  EXPECT_EQ(
      pareto_sweep(handle, SweepOptions{}, exec::Parallelism::dedicated(8)),
      baseline);
}

TEST(Harden, RebuildCandidateRegeneratesAProvedWinner) {
  // --emit regenerates winners from their (style, granularity, K) identity;
  // the rebuilt netlist must match the graded candidate's area and prove
  // equivalent again — including the selective path, which re-derives its
  // cone ranking from the base campaign.
  const ParetoResult& result = c17_sweep();
  const Circuit base = gen::c17();
  for (const std::string label : {"tmr/output", "selective/gate/k1"}) {
    const Candidate* candidate = find_candidate(result, label);
    ASSERT_NE(candidate, nullptr) << label;
    const HardenedCircuit rebuilt =
        rebuild_candidate(base, SweepOptions{}, *candidate);
    EXPECT_EQ(rebuilt.circuit.gate_count(), candidate->gates) << label;
    EXPECT_EQ(rebuilt.voter_gates, candidate->voter_gates) << label;
    EXPECT_TRUE(verify_hardened(base, rebuilt).equivalent) << label;
  }
  EXPECT_THROW((void)rebuild_candidate(base, SweepOptions{},
                                       result.candidates[0]),
               std::invalid_argument);
}

TEST(Harden, SelectiveHardeningBeatsUniformTmrAtEqualAreaOnC17) {
  // The acceptance pin: campaign-ranked selective gate hardening of the top
  // cone spends no more area than uniform whole-circuit TMR yet keeps
  // strictly more raw fault observability (uniform TMR masks detections
  // away), so at equal area the selective point strictly dominates on
  // coverage.
  const ParetoResult& result = c17_sweep();
  const Candidate* selective = find_candidate(result, "selective/gate/k1");
  const Candidate* uniform = find_candidate(result, "tmr/output");
  ASSERT_NE(selective, nullptr);
  ASSERT_NE(uniform, nullptr);
  EXPECT_LE(selective->gates, uniform->gates);
  EXPECT_GT(selective->coverage, uniform->coverage);
}

}  // namespace
}  // namespace enb::harden
