#include "sim/bitpack.hpp"

#include <gtest/gtest.h>

namespace enb::sim {
namespace {

TEST(Bitpack, LowMask) {
  EXPECT_EQ(low_mask(0), 0ULL);
  EXPECT_EQ(low_mask(1), 1ULL);
  EXPECT_EQ(low_mask(8), 0xFFULL);
  EXPECT_EQ(low_mask(63), ~0ULL >> 1);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(LaneCounter, CountsPerLane) {
  LaneCounter counter(10);
  counter.add(0b1011);
  counter.add(0b0011);
  counter.add(0b0001);
  EXPECT_EQ(counter.lane(0), 3);
  EXPECT_EQ(counter.lane(1), 2);
  EXPECT_EQ(counter.lane(2), 0);
  EXPECT_EQ(counter.lane(3), 1);
  EXPECT_EQ(counter.lane(63), 0);
}

TEST(LaneCounter, SlicesSizedForMaxCount) {
  EXPECT_EQ(LaneCounter(1).num_slices(), 1);
  EXPECT_EQ(LaneCounter(3).num_slices(), 2);
  EXPECT_EQ(LaneCounter(4).num_slices(), 3);
  EXPECT_EQ(LaneCounter(7).num_slices(), 3);
  EXPECT_EQ(LaneCounter(8).num_slices(), 4);
  EXPECT_THROW(LaneCounter(0), std::invalid_argument);
}

TEST(LaneCounter, SaturatedAllLanes) {
  LaneCounter counter(5);
  for (int i = 0; i < 5; ++i) counter.add(kAllOnes);
  for (int l = 0; l < kWordBits; ++l) EXPECT_EQ(counter.lane(l), 5);
  EXPECT_EQ(counter.max_lane(), 5);
}

TEST(LaneCounter, GreaterThanThreshold) {
  LaneCounter counter(7);
  // lane0: 3 adds, lane1: 2, lane2: 1, lane3: 0
  counter.add(0b0111);
  counter.add(0b0011);
  counter.add(0b0001);
  EXPECT_EQ(counter.greater_than(0) & 0xF, 0b0111ULL);
  EXPECT_EQ(counter.greater_than(1) & 0xF, 0b0011ULL);
  EXPECT_EQ(counter.greater_than(2) & 0xF, 0b0001ULL);
  EXPECT_EQ(counter.greater_than(3) & 0xF, 0b0000ULL);
}

TEST(LaneCounter, GreaterThanMajorityUseCase) {
  // Majority decode of a 5-wire bundle: count > 2.
  LaneCounter counter(5);
  counter.add(0b11);
  counter.add(0b11);
  counter.add(0b10);
  counter.add(0b00);
  counter.add(0b00);
  const Word majority = counter.greater_than(2);
  EXPECT_EQ(majority & 0b01, 0ULL);  // lane0: 2 of 5
  EXPECT_EQ(majority & 0b10, 0b10ULL);  // lane1: 3 of 5
}

TEST(LaneCounter, MaxLaneWithMask) {
  LaneCounter counter(4);
  counter.add(0b0001);
  counter.add(0b0101);
  EXPECT_EQ(counter.max_lane(), 2);
  EXPECT_EQ(counter.max_lane(0b0100), 1);
  EXPECT_EQ(counter.max_lane(0b1000), 0);
}

TEST(LaneCounter, ResetClears) {
  LaneCounter counter(3);
  counter.add(kAllOnes);
  counter.reset();
  EXPECT_EQ(counter.max_lane(), 0);
}

}  // namespace
}  // namespace enb::sim
