#include "core/size_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::core {
namespace {

TEST(SizeBound, OmegaLimits) {
  // omega -> 0 as eps -> 0; omega -> 1/2 as eps -> 1/2.
  EXPECT_DOUBLE_EQ(omega(0.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(omega(0.5, 2), 0.5);
  // omega(eps, 1) == eps.
  EXPECT_NEAR(omega(0.07, 1), 0.07, 1e-15);
  // Known value: k=2, eps=0.01 -> (1 - 0.98^2)/2 = 0.0198.
  EXPECT_NEAR(omega(0.01, 2), 0.0198, 1e-12);
}

TEST(SizeBound, OmegaMonotoneInFanin) {
  double prev = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double w = omega(0.05, k);
    EXPECT_GT(w, prev);
    EXPECT_LT(w, 0.5);
    prev = w;
  }
}

TEST(SizeBound, TOfOmegaShape) {
  // t(1/2) = 1 (denominator of the bound vanishes at eps = 1/2).
  EXPECT_NEAR(t_of_omega(0.5), 1.0, 1e-12);
  // Symmetric around 1/2.
  EXPECT_NEAR(t_of_omega(0.2), t_of_omega(0.8), 1e-12);
  // Diverges toward the edges.
  EXPECT_GT(t_of_omega(0.001), t_of_omega(0.01));
  EXPECT_GT(t_of_omega(0.01), t_of_omega(0.1));
  EXPECT_THROW((void)t_of_omega(0.0), std::invalid_argument);
  EXPECT_THROW((void)t_of_omega(1.0), std::invalid_argument);
}

TEST(SizeBound, PaperFigure3Point) {
  // Figure 3's parameters: s=10, delta=0.01. At k=2, eps=0.01 the bound is
  // (10 log2 10 + 20 log2 1.96) / (2 log2 t(0.0198)) ≈ 4.7 gates.
  const double r = redundancy_lower_bound(10, 2, 0.01, 0.01);
  EXPECT_NEAR(r, 4.7, 0.2);
}

TEST(SizeBound, ZeroAtZeroEpsilon) {
  EXPECT_DOUBLE_EQ(redundancy_lower_bound(10, 2, 0.0, 0.01), 0.0);
}

TEST(SizeBound, InfiniteAtHalfEpsilon) {
  EXPECT_TRUE(std::isinf(redundancy_lower_bound(10, 2, 0.5, 0.01)));
}

TEST(SizeBound, MonotoneInEpsilon) {
  double prev = 0.0;
  for (double eps : {0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49}) {
    const double r = redundancy_lower_bound(10, 2, eps, 0.01);
    EXPECT_GE(r, prev) << "eps=" << eps;
    prev = r;
  }
}

TEST(SizeBound, LargerFaninLowersBound) {
  // Figure 3: the k=4 curve sits below k=3 below k=2.
  const double r2 = redundancy_lower_bound(10, 2, 0.01, 0.01);
  const double r3 = redundancy_lower_bound(10, 3, 0.01, 0.01);
  const double r4 = redundancy_lower_bound(10, 4, 0.01, 0.01);
  EXPECT_GT(r2, r3);
  EXPECT_GT(r3, r4);
}

TEST(SizeBound, OrderOfMagnitudeNearHalf) {
  // Paper: "more than an order of magnitude redundancy factor is needed for
  // error levels close to 0.5" (s=10, S0=21, delta=0.01).
  const double r = redundancy_lower_bound(10, 2, 0.4, 0.01);
  EXPECT_GT(r / 21.0, 10.0);
}

TEST(SizeBound, GrowsSuperlinearlyInSensitivity) {
  // s log s growth: doubling s more than doubles the bound.
  const double r1 = redundancy_lower_bound(8, 2, 0.05, 0.01);
  const double r2 = redundancy_lower_bound(16, 2, 0.05, 0.01);
  EXPECT_GT(r2, 2.0 * r1);
}

TEST(SizeBound, VacuousDeltaClampsAtZero) {
  // For delta -> 1/4, log2(2(1-2delta)) -> 0 and beyond 1/4 it is negative;
  // with s = 1 (log s = 0) the bound would go negative without the clamp.
  EXPECT_DOUBLE_EQ(redundancy_lower_bound(1, 2, 0.01, 0.4), 0.0);
  EXPECT_GE(redundancy_lower_bound(2, 2, 0.01, 0.3), 0.0);
}

TEST(SizeBound, SizeFactor) {
  const double r = redundancy_lower_bound(10, 2, 0.01, 0.01);
  EXPECT_NEAR(size_factor_lower_bound(10, 21, 2, 0.01, 0.01), 1.0 + r / 21.0,
              1e-12);
  EXPECT_THROW((void)size_factor_lower_bound(10, 0, 2, 0.01, 0.01),
               std::invalid_argument);
}

TEST(SizeBound, FractionalFaninInterpolates) {
  const double r2 = redundancy_lower_bound(10, 2.0, 0.01, 0.01);
  const double r25 = redundancy_lower_bound(10, 2.5, 0.01, 0.01);
  const double r3 = redundancy_lower_bound(10, 3.0, 0.01, 0.01);
  EXPECT_LT(r25, r2);
  EXPECT_GT(r25, r3);
}

TEST(SizeBound, ReferenceShapes) {
  EXPECT_NEAR(classical_nlogn_bound(8), 8 * 3, 1e-12);
  EXPECT_GT(size_upper_bound_shape(100), 100.0);
  EXPECT_THROW((void)classical_nlogn_bound(0.5), std::invalid_argument);
  EXPECT_THROW((void)size_upper_bound_shape(0.0), std::invalid_argument);
}

TEST(SizeBound, DomainChecks) {
  EXPECT_THROW((void)redundancy_lower_bound(0.5, 2, 0.01, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)redundancy_lower_bound(10, 0.5, 0.01, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)redundancy_lower_bound(10, 2, 0.6, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)redundancy_lower_bound(10, 2, 0.01, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
