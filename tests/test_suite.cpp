#include "gen/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/iscas.hpp"
#include "netlist/validate.hpp"
#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

TEST(Suite, StandardSuiteBuildsValidCircuits) {
  for (const BenchmarkSpec& spec : standard_suite()) {
    const netlist::Circuit c = spec.build();
    EXPECT_EQ(c.name(), spec.name);
    const auto report = netlist::validate(c);
    EXPECT_TRUE(report.ok()) << spec.name;
    EXPECT_GT(c.gate_count(), 0u) << spec.name;
  }
}

TEST(Suite, ScaleSuiteBuildsValidKiloNetCircuits) {
  // The scale suite exists for fault campaigns at thousand-net size; every
  // member validates and at least one clears 1000 nets (inputs + gates).
  std::size_t max_nets = 0;
  for (const BenchmarkSpec& spec : scale_suite()) {
    const netlist::Circuit c = spec.build();
    EXPECT_EQ(c.name(), spec.name);
    const auto report = netlist::validate(c);
    EXPECT_TRUE(report.ok()) << spec.name;
    max_nets = std::max(max_nets, c.num_inputs() + c.gate_count());
  }
  EXPECT_GE(max_nets, 1000u);
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : standard_suite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
  // Scale-suite names share the lookup namespace with the standard suite.
  for (const BenchmarkSpec& spec : scale_suite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

TEST(Suite, FamiliesCoverPaperWorkloads) {
  std::set<std::string> families;
  for (const BenchmarkSpec& spec : standard_suite()) {
    families.insert(spec.family);
  }
  // The paper's Section 6 mix: ISCAS subset + adders + multipliers; parity is
  // the tightness family; control circuits widen the sw0 range.
  EXPECT_TRUE(families.count("iscas"));
  EXPECT_TRUE(families.count("adder"));
  EXPECT_TRUE(families.count("multiplier"));
  EXPECT_TRUE(families.count("parity"));
}

TEST(Suite, SmallSuiteIsSubsetOfStandard) {
  std::set<std::string> standard;
  for (const BenchmarkSpec& spec : standard_suite()) standard.insert(spec.name);
  for (const BenchmarkSpec& spec : small_suite()) {
    EXPECT_TRUE(standard.count(spec.name)) << spec.name;
  }
}

TEST(Suite, FindBenchmark) {
  const BenchmarkSpec spec = find_benchmark("rca16");
  EXPECT_EQ(spec.name, "rca16");
  EXPECT_EQ(spec.build().num_inputs(), 33u);
  // Scale-suite members resolve through the same lookup.
  EXPECT_EQ(find_benchmark("rca256").build().num_inputs(), 513u);
  EXPECT_THROW((void)find_benchmark("c6288"), std::invalid_argument);
}

TEST(Suite, C17MatchesIscasStructure) {
  const netlist::Circuit c = c17();
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.gate_count(), 6u);
  // Known vector: all inputs 1 -> outputs (1, 0); see test_logic_sim.
  const std::vector<bool> ones(5, true);
  const auto out = sim::eval_single(c, ones);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

}  // namespace
}  // namespace enb::gen
