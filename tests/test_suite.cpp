#include "gen/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "gen/iscas.hpp"
#include "netlist/validate.hpp"
#include "sim/logic_sim.hpp"

namespace enb::gen {
namespace {

TEST(Suite, StandardSuiteBuildsValidCircuits) {
  for (const BenchmarkSpec& spec : standard_suite()) {
    const netlist::Circuit c = spec.build();
    EXPECT_EQ(c.name(), spec.name);
    const auto report = netlist::validate(c);
    EXPECT_TRUE(report.ok()) << spec.name;
    EXPECT_GT(c.gate_count(), 0u) << spec.name;
  }
}

TEST(Suite, ScaleSuiteBuildsValidKiloNetCircuits) {
  // The scale suite exists for fault campaigns at thousand-net size; every
  // member validates and at least one clears 1000 nets (inputs + gates).
  std::size_t max_nets = 0;
  for (const BenchmarkSpec& spec : scale_suite()) {
    const netlist::Circuit c = spec.build();
    EXPECT_EQ(c.name(), spec.name);
    const auto report = netlist::validate(c);
    EXPECT_TRUE(report.ok()) << spec.name;
    max_nets = std::max(max_nets, c.num_inputs() + c.gate_count());
  }
  EXPECT_GE(max_nets, 1000u);
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : standard_suite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
  // Scale-suite names share the lookup namespace with the standard suite.
  for (const BenchmarkSpec& spec : scale_suite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

TEST(Suite, FamiliesCoverPaperWorkloads) {
  std::set<std::string> families;
  for (const BenchmarkSpec& spec : standard_suite()) {
    families.insert(spec.family);
  }
  // The paper's Section 6 mix: ISCAS subset + adders + multipliers; parity is
  // the tightness family; control circuits widen the sw0 range.
  EXPECT_TRUE(families.count("iscas"));
  EXPECT_TRUE(families.count("adder"));
  EXPECT_TRUE(families.count("multiplier"));
  EXPECT_TRUE(families.count("parity"));
}

TEST(Suite, SmallSuiteIsSubsetOfStandard) {
  std::set<std::string> standard;
  for (const BenchmarkSpec& spec : standard_suite()) standard.insert(spec.name);
  for (const BenchmarkSpec& spec : small_suite()) {
    EXPECT_TRUE(standard.count(spec.name)) << spec.name;
  }
}

TEST(Suite, FindBenchmark) {
  const BenchmarkSpec spec = find_benchmark("rca16");
  EXPECT_EQ(spec.name, "rca16");
  EXPECT_EQ(spec.build().num_inputs(), 33u);
  // Scale-suite members resolve through the same lookup.
  EXPECT_EQ(find_benchmark("rca256").build().num_inputs(), 513u);
  EXPECT_THROW((void)find_benchmark("c6288"), std::invalid_argument);
}

TEST(Suite, C17MatchesIscasStructure) {
  const netlist::Circuit c = c17();
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.gate_count(), 6u);
  // Known vector: all inputs 1 -> outputs (1, 0); see test_logic_sim.
  const std::vector<bool> ones(5, true);
  const auto out = sim::eval_single(c, ones);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

// Behavioral reference for the c432 interrupt controller, written from the
// Hansen-Yalcin-Hayes high-level spec (not from the netlist): inputs are
// E[0..8], A[0..8], B[0..8], C[0..8] in declaration order; a channel
// requests on bus X when X[i] & E[i]; bus priority is A > B > C; the lowest
// granted channel's index is binary-encoded on the four address outputs
// (channel 0 — and "no grant" — encode as 0000). Outputs in declaration
// order: PA, PB, PC, addr3 (MSB), addr2, addr1, addr0.
std::vector<bool> c432_reference(const std::vector<bool>& in) {
  bool req_a[9];
  bool req_b[9];
  bool req_c[9];
  bool any_a = false;
  bool any_b = false;
  bool any_c = false;
  for (int i = 0; i < 9; ++i) {
    const bool enable = in[static_cast<std::size_t>(i)];
    req_a[i] = in[static_cast<std::size_t>(9 + i)] && enable;
    req_b[i] = in[static_cast<std::size_t>(18 + i)] && enable;
    req_c[i] = in[static_cast<std::size_t>(27 + i)] && enable;
    any_a = any_a || req_a[i];
    any_b = any_b || req_b[i];
    any_c = any_c || req_c[i];
  }
  const bool pa = any_a;
  const bool pb = any_b && !pa;
  const bool pc = any_c && !pa && !pb;
  int first = 0;  // encodes 0000 when nothing is granted
  for (int i = 0; i < 9; ++i) {
    if ((pa && req_a[i]) || (pb && req_b[i]) || (pc && req_c[i])) {
      first = i;
      break;
    }
  }
  return {pa,
          pb,
          pc,
          (first & 8) != 0,
          (first & 4) != 0,
          (first & 2) != 0,
          (first & 1) != 0};
}

TEST(Suite, C432MatchesBehavioralReferenceModel) {
  const netlist::Circuit c = c432();
  ASSERT_EQ(c.num_inputs(), 36u);
  ASSERT_EQ(c.num_outputs(), 7u);
  EXPECT_EQ(c.gate_count(), 98u);

  const auto check = [&](const std::vector<bool>& in, const char* what) {
    EXPECT_EQ(sim::eval_single(c, in), c432_reference(in)) << what;
  };
  check(std::vector<bool>(36, false), "all zero");
  check(std::vector<bool>(36, true), "all one");
  // Single requests: each channel on each bus, alone, with every enable up —
  // exercises both priority arbitration and the full address encode range.
  for (int bus = 0; bus < 3; ++bus) {
    for (int channel = 0; channel < 9; ++channel) {
      std::vector<bool> in(36, false);
      for (int i = 0; i < 9; ++i) in[static_cast<std::size_t>(i)] = true;
      in[static_cast<std::size_t>(9 + 9 * bus + channel)] = true;
      check(in, "single request");
    }
  }
  // Deterministic pseudo-random assignments (xorshift64), biased by masking
  // so sparse request mixes — where the priority chain matters — show up.
  std::uint64_t state = 0xC432C432u;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 512; ++trial) {
    const std::uint64_t bits = next();
    const std::uint64_t mask = next() | next();
    std::vector<bool> in(36);
    for (std::size_t i = 0; i < 36; ++i) {
      in[i] = ((bits & mask) >> i & 1u) != 0;
    }
    check(in, "random assignment");
  }
}

}  // namespace
}  // namespace enb::gen
