#include "sim/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace enb::sim {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit single_buffer() {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kBuf, a));
  return c;
}

TEST(Wilson, DegenerateCases) {
  const ReliabilityResult zero = wilson_interval(0, 1000);
  EXPECT_DOUBLE_EQ(zero.delta_hat, 0.0);
  EXPECT_GE(zero.ci_low, 0.0);
  EXPECT_GT(zero.ci_high, 0.0);
  EXPECT_LT(zero.ci_high, 0.01);

  const ReliabilityResult all = wilson_interval(1000, 1000);
  EXPECT_DOUBLE_EQ(all.delta_hat, 1.0);
  EXPECT_LE(all.ci_high, 1.0);
  EXPECT_GT(all.ci_low, 0.99);

  const ReliabilityResult none = wilson_interval(0, 0);
  EXPECT_EQ(none.trials, 0u);
}

TEST(Wilson, CoversTrueValue) {
  const ReliabilityResult r = wilson_interval(100, 1000);
  EXPECT_LT(r.ci_low, 0.1);
  EXPECT_GT(r.ci_high, 0.1);
  EXPECT_NEAR(r.delta_hat, 0.1, 1e-12);
}

TEST(Reliability, SingleGateDeltaEqualsEpsilon) {
  const Circuit c = single_buffer();
  const double eps = 0.05;
  ReliabilityOptions options;
  options.trials = 1 << 18;
  const ReliabilityResult r = estimate_reliability(c, eps, options);
  EXPECT_GT(r.trials, 0u);
  EXPECT_LE(r.ci_low, eps);
  EXPECT_GE(r.ci_high, eps);
  EXPECT_NEAR(r.delta_hat, eps, 0.005);
}

TEST(Reliability, ZeroEpsilonZeroDelta) {
  const Circuit c = single_buffer();
  const ReliabilityResult r = estimate_reliability(c, 0.0);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.delta_hat, 0.0);
}

TEST(Reliability, MultiOutputAnyWrongCounts) {
  // Two independent eps-noisy buffers: P(any wrong) = 1 - (1-eps)^2.
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kBuf, a));
  c.add_output(c.add_gate(GateType::kBuf, a));
  const double eps = 0.1;
  ReliabilityOptions options;
  options.trials = 1 << 18;
  const ReliabilityResult r = estimate_reliability(c, eps, options);
  const double expected = 1.0 - (1.0 - eps) * (1.0 - eps);
  EXPECT_NEAR(r.delta_hat, expected, 0.01);
}

TEST(Reliability, VsGoldenDetectsFunctionalMismatch) {
  // "Noisy" circuit computes NOT while golden computes BUF: delta == 1 even
  // with eps == 0.
  Circuit noisy;
  const NodeId a1 = noisy.add_input();
  noisy.add_output(noisy.add_gate(GateType::kNot, a1));
  const Circuit golden = single_buffer();
  const ReliabilityResult r = estimate_reliability_vs(noisy, golden, 0.0);
  EXPECT_DOUBLE_EQ(r.delta_hat, 1.0);
}

TEST(Reliability, VsGoldenInterfaceMismatchThrows) {
  Circuit two_in;
  const NodeId a = two_in.add_input();
  two_in.add_input();
  two_in.add_output(a);
  EXPECT_THROW(
      (void)estimate_reliability_vs(two_in, single_buffer(), 0.1),
      std::invalid_argument);
}

TEST(Reliability, TrialsRoundedUpToWordMultiple) {
  ReliabilityOptions options;
  options.trials = 1;
  const ReliabilityResult r =
      estimate_reliability(single_buffer(), 0.1, options);
  EXPECT_EQ(r.trials, 64u);
}

TEST(Reliability, ReportsRequestedAndExecutedTrials) {
  // delta_hat is normalized by the executed (64-rounded) count; consumers
  // that need the caller's requested budget read requested_trials.
  ReliabilityOptions options;
  options.trials = 1000;
  const ReliabilityResult r =
      estimate_reliability(single_buffer(), 0.1, options);
  EXPECT_EQ(r.trials, 1024u);
  EXPECT_EQ(r.requested_trials, 1000u);
  EXPECT_DOUBLE_EQ(
      r.delta_hat,
      static_cast<double>(r.failures) / static_cast<double>(r.trials));
}

TEST(Wilson, RequestedTrialsDefaultsToExecuted) {
  const ReliabilityResult r = wilson_interval(7, 128);
  EXPECT_EQ(r.trials, 128u);
  EXPECT_EQ(r.requested_trials, 128u);
}

TEST(WorstCase, ReportsRequestedAndExecutedTrials) {
  WorstCaseOptions options;
  options.num_inputs = 4;
  options.trials_per_input = 100;  // rounds up to 128
  const Circuit c = single_buffer();
  const WorstCaseResult r =
      estimate_worst_case_reliability(c, c, 0.1, options);
  EXPECT_EQ(r.worst.trials, 128u);
  EXPECT_EQ(r.worst.requested_trials, 100u);
}

TEST(Reliability, DeterministicPerSeed) {
  ReliabilityOptions options;
  options.trials = 1 << 12;
  options.seed = 123;
  const ReliabilityResult r1 =
      estimate_reliability(single_buffer(), 0.2, options);
  const ReliabilityResult r2 =
      estimate_reliability(single_buffer(), 0.2, options);
  EXPECT_EQ(r1.failures, r2.failures);
}

TEST(Reliability, ZeroTrialsRejected) {
  ReliabilityOptions options;
  options.trials = 0;
  EXPECT_THROW((void)estimate_reliability(single_buffer(), 0.1, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace enb::sim
