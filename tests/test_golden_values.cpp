// Golden-value regression tests: the paper's headline numbers, pinned to 12
// significant digits so refactors of the bounds pipeline cannot silently
// drift the reproduced figures.
//
// Instances covered (all on the paper's Section 6 setup, the 10-input parity
// circuit with s = 10, S0 = 21, delta = 0.01):
//   - Theorem 2 / Corollary 1 redundancy lower bound (Figure 3 anchors)
//   - Theorem 3 normalized leakage ratio (Figure 4 anchors)
//   - Corollary 2 switching-energy composition and the full energy breakdown
//   - Theorem 1 activity algebra and the Theorem 4 feasibility threshold
// The numbers were produced by this codebase at bring-up and cross-checked
// against the paper's qualitative claims (e.g. ">= 40% more energy" head-
// line, "more than an order of magnitude redundancy near eps = 0.5").
#include <gtest/gtest.h>

#include "core/activity_model.hpp"
#include "core/analyzer.hpp"
#include "core/depth_bound.hpp"
#include "core/energy_bound.hpp"
#include "core/leakage_model.hpp"
#include "core/size_bound.hpp"

namespace enb::core {
namespace {

// Relative tolerance for pinned values: loose enough to survive benign
// floating-point reassociation, tight enough to catch any model change.
constexpr double kRelTol = 1e-9;

void ExpectPinned(double actual, double golden) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * kRelTol)
      << "pinned value drifted";
}

TEST(GoldenValues, Fig3RedundancyLowerBound) {
  // Figure 3: R(s=10, k, eps, delta=0.01) anchors.
  ExpectPinned(redundancy_lower_bound(10, 2, 0.01, 0.01), 4.69911749252899);
  ExpectPinned(redundancy_lower_bound(10, 3, 0.01, 0.01), 3.50784883146677);
  ExpectPinned(redundancy_lower_bound(10, 4, 0.01, 0.01), 2.87751612230267);
  // Near eps = 0.5 the bound diverges; the paper calls out "more than an
  // order of magnitude": at eps = 0.45 the size factor is ~2170x.
  ExpectPinned(redundancy_lower_bound(10, 2, 0.45, 0.01), 45610.4854780298);
  EXPECT_GT((21.0 + 45610.4854780298) / 21.0, 10.0);
}

TEST(GoldenValues, Fig4LeakageRatio) {
  // Figure 4: W_L,eps / W_L,0 (Theorem 3) anchors.
  ExpectPinned(leakage_ratio(0.1, 0.4), 0.118457300275482);
  ExpectPinned(leakage_ratio(0.9, 0.4), 8.44186046511628);
  // sw0 = 0.5 is the fixed point: the ratio is exactly 1 for every eps.
  EXPECT_DOUBLE_EQ(leakage_ratio(0.5, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(leakage_ratio(0.5, 0.05), 1.0);
}

TEST(GoldenValues, Corollary2SwitchingComposition) {
  // Corollary 2 on (s=10, S0=21, sw0=0.3, k=2, eps=0.01, delta=0.01):
  // switching factor = size factor x activity factor.
  ExpectPinned(switching_energy_factor(10, 21, 0.3, 2, 0.01, 0.01),
               1.25607496163485);
  ExpectPinned(activity_ratio(0.3, 0.01), 1.0264);
  ExpectPinned(noisy_activity(0.3, 0.01), 0.30792);
  // Composition identity against the pinned factors.
  ExpectPinned(1.22376749964424 * 1.0264, 1.25607496163485);
}

TEST(GoldenValues, TotalEnergyBreakdown) {
  const EnergyBreakdown b = total_energy_factor(10, 21, 0.3, 2, 0.01, 0.01);
  ExpectPinned(b.size_factor, 1.22376749964424);
  ExpectPinned(b.activity_factor, 1.0264);
  ExpectPinned(b.idle_factor, 0.988685714285714);
  ExpectPinned(b.switching_factor, 1.25607496163485);
  ExpectPinned(b.leakage_factor, 1.20992144450541);
  ExpectPinned(b.total_factor, 1.23299820307013);
}

TEST(GoldenValues, PaperParityInstanceAnalysis) {
  // The full analyzer on the paper's parity instance at the headline
  // operating point (eps, delta) = (0.01, 0.01), sw0 at the fixed point.
  const CircuitProfile p = make_profile("parity10", 10, 21, 0.5, 2, 10);
  const BoundReport r = analyze(p, 0.01, 0.01);
  ExpectPinned(r.energy.size_factor, 1.22376749964424);
  EXPECT_DOUBLE_EQ(r.energy.activity_factor, 1.0);  // sw0 = 0.5 fixed point
  ExpectPinned(r.energy.total_factor, 1.22376749964424);
  EXPECT_DOUBLE_EQ(r.sw_noisy, 0.5);
  EXPECT_DOUBLE_EQ(r.leakage_ratio, 1.0);
  ExpectPinned(r.depth_bound, 3.39849711447749);
  ExpectPinned(r.metrics.delay, 1.0619010713644);
}

TEST(GoldenValues, Theorem1ActivityAlgebra) {
  // Figure 2 anchors: slope (1-2e)^2 and the eps = 0.5 collapse.
  ExpectPinned(activity_contraction(0.1), 0.64);
  EXPECT_DOUBLE_EQ(noisy_activity(0.1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(noisy_activity(0.5, 0.3), 0.5);  // fixed point
}

TEST(GoldenValues, Theorem4FeasibilityThreshold) {
  // Gates of fanin k tolerate eps below (1 - 1/sqrt(k))/2... pinned from
  // the depth-bound module for k = 2 and 3.
  ExpectPinned(max_feasible_epsilon(2), 0.146446609406726);
  ExpectPinned(max_feasible_epsilon(3), 0.211324865405187);
}

}  // namespace
}  // namespace enb::core
