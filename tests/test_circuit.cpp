#include "netlist/circuit.hpp"

#include <gtest/gtest.h>

namespace enb::netlist {
namespace {

TEST(Circuit, EmptyCircuit) {
  const Circuit c("empty");
  EXPECT_EQ(c.name(), "empty");
  EXPECT_EQ(c.node_count(), 0u);
  EXPECT_EQ(c.num_inputs(), 0u);
  EXPECT_EQ(c.num_outputs(), 0u);
  EXPECT_EQ(c.gate_count(), 0u);
}

TEST(Circuit, BuildSmallNetlist) {
  Circuit c("half_adder");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId sum = c.add_gate(GateType::kXor, a, b);
  const NodeId carry = c.add_gate(GateType::kAnd, a, b);
  c.add_output(sum, "sum");
  c.add_output(carry, "carry");

  EXPECT_EQ(c.node_count(), 4u);
  EXPECT_EQ(c.num_inputs(), 2u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.gate_count(), 2u);
  EXPECT_EQ(c.type(sum), GateType::kXor);
  ASSERT_EQ(c.fanins(sum).size(), 2u);
  EXPECT_EQ(c.fanins(sum)[0], a);
  EXPECT_EQ(c.fanins(sum)[1], b);
}

TEST(Circuit, InputIndexing) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, a);
  const NodeId b = c.add_input("b");
  EXPECT_EQ(c.input_index(a), 0);
  EXPECT_EQ(c.input_index(b), 1);
  EXPECT_EQ(c.input_index(g), -1);
  ASSERT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(c.inputs()[0], a);
  EXPECT_EQ(c.inputs()[1], b);
}

TEST(Circuit, ConstantsDoNotCountAsGates) {
  Circuit c;
  const NodeId k0 = c.add_const(false);
  const NodeId k1 = c.add_const(true);
  c.add_gate(GateType::kOr, k0, k1);
  EXPECT_EQ(c.gate_count(), 1u);
  EXPECT_EQ(c.type(k0), GateType::kConst0);
  EXPECT_EQ(c.type(k1), GateType::kConst1);
}

TEST(Circuit, NamesAndDefaults) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, a);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_EQ(c.node_name(g), "n" + std::to_string(g));
  c.set_node_name(g, "inv_a");
  EXPECT_EQ(c.node_name(g), "inv_a");
  c.add_output(g);
  EXPECT_EQ(c.output_name(0), "inv_a");
  c.add_output(g, "port");
  EXPECT_EQ(c.output_name(1), "port");
}

TEST(Circuit, RejectsBadArity) {
  Circuit c;
  const NodeId a = c.add_input();
  EXPECT_THROW(c.add_gate(GateType::kNot, std::vector<NodeId>{a, a}),
               std::invalid_argument);
  EXPECT_THROW(c.add_gate(GateType::kMaj, a, a), std::invalid_argument);
  EXPECT_THROW(c.add_gate(GateType::kAnd, std::vector<NodeId>{}),
               std::invalid_argument);
  EXPECT_THROW(c.add_gate(GateType::kInput, std::vector<NodeId>{}),
               std::invalid_argument);
}

TEST(Circuit, RejectsForwardReferences) {
  Circuit c;
  const NodeId a = c.add_input();
  // Fanins must already exist: ids >= node_count() are rejected, which is
  // what makes the representation a DAG by construction.
  EXPECT_THROW(c.add_gate(GateType::kNot, static_cast<NodeId>(99)),
               std::invalid_argument);
  EXPECT_THROW(c.add_output(static_cast<NodeId>(99)), std::invalid_argument);
  EXPECT_NO_THROW(c.add_gate(GateType::kNot, a));
}

TEST(Circuit, DuplicateOutputListings) {
  Circuit c;
  const NodeId a = c.add_input("a");
  c.add_output(a, "y0");
  c.add_output(a, "y1");
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.outputs()[0], c.outputs()[1]);
  EXPECT_EQ(c.output_name(0), "y0");
  EXPECT_EQ(c.output_name(1), "y1");
}

TEST(Circuit, NodeAccessBounds) {
  Circuit c;
  EXPECT_THROW((void)c.node(0), std::invalid_argument);
  EXPECT_THROW((void)c.node_name(5), std::invalid_argument);
  EXPECT_THROW((void)c.output_name(0), std::out_of_range);
  EXPECT_FALSE(c.is_valid(kInvalidNode));
}

TEST(Circuit, GateCountTracksTypes) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_const(true);
  const NodeId g1 = c.add_gate(GateType::kBuf, a);
  const NodeId g2 = c.add_gate(GateType::kNand, g1, b);
  c.add_gate(GateType::kMaj, a, b, g2);
  EXPECT_EQ(c.gate_count(), 3u);  // buf + nand + maj; input/const excluded
}

}  // namespace
}  // namespace enb::netlist
