#include "gen/random_circuit.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "netlist/validate.hpp"

namespace enb::gen {
namespace {

TEST(RandomCircuit, RespectsRequestedShape) {
  RandomCircuitOptions options;
  options.num_inputs = 10;
  options.num_gates = 100;
  options.num_outputs = 5;
  options.max_fanin = 3;
  const auto c = random_circuit(options);
  EXPECT_EQ(c.num_inputs(), 10u);
  EXPECT_EQ(c.gate_count(), 100u);
  EXPECT_EQ(c.num_outputs(), 5u);
  EXPECT_LE(netlist::compute_stats(c).max_fanin, 3);
}

TEST(RandomCircuit, DeterministicPerSeed) {
  RandomCircuitOptions options;
  options.seed = 1234;
  const auto a = random_circuit(options);
  const auto b = random_circuit(options);
  EXPECT_EQ(a.node_count(), b.node_count());
  for (netlist::NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.type(id), b.type(id));
    EXPECT_EQ(a.fanins(id).size(), b.fanins(id).size());
  }
}

TEST(RandomCircuit, SeedsProduceDifferentStructures) {
  RandomCircuitOptions a_options;
  a_options.seed = 1;
  RandomCircuitOptions b_options;
  b_options.seed = 2;
  const auto a = random_circuit(a_options);
  const auto b = random_circuit(b_options);
  bool differs = a.node_count() != b.node_count();
  for (netlist::NodeId id = 0; !differs && id < a.node_count(); ++id) {
    const auto fa = a.fanins(id);
    const auto fb = b.fanins(id);
    differs = a.type(id) != b.type(id) ||
              !std::equal(fa.begin(), fa.end(), fb.begin(), fb.end());
  }
  EXPECT_TRUE(differs);
}

TEST(RandomCircuit, HighLocalityDeepens) {
  RandomCircuitOptions shallow;
  shallow.num_gates = 200;
  shallow.locality = 0.0;
  shallow.seed = 77;
  RandomCircuitOptions deep = shallow;
  deep.locality = 0.95;
  const int depth_shallow = netlist::compute_stats(random_circuit(shallow)).depth;
  const int depth_deep = netlist::compute_stats(random_circuit(deep)).depth;
  EXPECT_GT(depth_deep, depth_shallow);
}

TEST(RandomCircuit, ValidatesCleanly) {
  RandomCircuitOptions options;
  options.seed = 5;
  const auto c = random_circuit(options);
  EXPECT_TRUE(netlist::validate(c).ok());
}

TEST(RandomCircuit, MaxFaninTwoExcludesMaj) {
  RandomCircuitOptions options;
  options.max_fanin = 2;
  options.num_gates = 64;
  const auto c = random_circuit(options);
  const auto stats = netlist::compute_stats(c);
  EXPECT_EQ(stats.gate_histogram.count(netlist::GateType::kMaj), 0u);
  EXPECT_LE(stats.max_fanin, 2);
}

TEST(RandomCircuit, RejectsBadOptions) {
  RandomCircuitOptions options;
  options.num_inputs = 0;
  EXPECT_THROW((void)random_circuit(options), std::invalid_argument);
  options = {};
  options.max_fanin = 1;
  EXPECT_THROW((void)random_circuit(options), std::invalid_argument);
  options = {};
  options.locality = 1.5;
  EXPECT_THROW((void)random_circuit(options), std::invalid_argument);
}

}  // namespace
}  // namespace enb::gen
