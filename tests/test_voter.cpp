#include "ft/voter.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace enb::ft {
namespace {

using netlist::Circuit;
using netlist::NodeId;

int count_ones(int mask, int n) {
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += (mask >> i) & 1;
  return ones;
}

class Maj3StyleTest : public ::testing::TestWithParam<VoterStyle> {};

TEST_P(Maj3StyleTest, TruthTable) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  c.add_output(append_maj3(c, a, b, d, GetParam()));
  for (int mask = 0; mask < 8; ++mask) {
    const std::vector<bool> in{(mask & 1) != 0, (mask & 2) != 0,
                               (mask & 4) != 0};
    EXPECT_EQ(sim::eval_single(c, in)[0], count_ones(mask, 3) >= 2)
        << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, Maj3StyleTest,
                         ::testing::Values(VoterStyle::kMajGate,
                                           VoterStyle::kTwoInput));

TEST(Voter, Maj3GateCounts) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId d = c.add_input();
  (void)append_maj3(c, a, b, d, VoterStyle::kMajGate);
  EXPECT_EQ(c.gate_count(), 1u);
  (void)append_maj3(c, a, b, d, VoterStyle::kTwoInput);
  EXPECT_EQ(c.gate_count(), 5u);
}

class MajorityNTest : public ::testing::TestWithParam<int> {};

TEST_P(MajorityNTest, ExhaustiveThreshold) {
  const int n = GetParam();
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < n; ++i) ins.push_back(c.add_input());
  c.add_output(append_majority(c, ins));
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<bool> in;
    for (int i = 0; i < n; ++i) in.push_back(((mask >> i) & 1) != 0);
    EXPECT_EQ(sim::eval_single(c, in)[0], count_ones(mask, n) > n / 2)
        << "n=" << n << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(OddCounts, MajorityNTest,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(Voter, MajorityRejectsEvenOrTiny) {
  Circuit c;
  std::vector<NodeId> two{c.add_input(), c.add_input()};
  EXPECT_THROW((void)append_majority(c, two), std::invalid_argument);
  two.push_back(c.add_input());
  two.push_back(c.add_input());  // four signals
  EXPECT_THROW((void)append_majority(c, two), std::invalid_argument);
}

}  // namespace
}  // namespace enb::ft
