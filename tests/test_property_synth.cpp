// Property sweeps over the synthesis passes: on seeded random circuits and
// across libraries, every pass must preserve the function and establish its
// structural postcondition.
#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "netlist/stats.hpp"
#include "sim/exhaustive.hpp"
#include "synth/decompose.hpp"
#include "synth/mapper.hpp"
#include "synth/strash.hpp"
#include "synth/sweep.hpp"

namespace enb::synth {
namespace {

gen::RandomCircuitOptions random_options(std::uint64_t seed) {
  gen::RandomCircuitOptions options;
  options.seed = seed;
  options.num_inputs = 10;
  options.num_gates = 120;
  options.num_outputs = 6;
  options.max_fanin = 4;
  return options;
}

class RandomCircuitSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitSeedTest, SweepPreservesFunctionAndNeverGrows) {
  const auto c = gen::random_circuit(random_options(GetParam()));
  const auto s = sweep(c);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
  EXPECT_LE(s.gate_count(), c.gate_count());
  // Sweep is idempotent.
  const auto s2 = sweep(s);
  EXPECT_EQ(s2.gate_count(), s.gate_count());
  EXPECT_EQ(s2.node_count(), s.node_count());
}

TEST_P(RandomCircuitSeedTest, StrashPreservesFunctionAndNeverGrows) {
  const auto c = gen::random_circuit(random_options(GetParam()));
  const auto s = strash(c);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
  EXPECT_LE(s.gate_count(), c.gate_count());
}

TEST_P(RandomCircuitSeedTest, ReduceFaninEstablishesBound) {
  const auto c = gen::random_circuit(random_options(GetParam()));
  for (int k : {2, 3}) {
    const auto reduced = reduce_fanin(c, k);
    EXPECT_TRUE(sim::exhaustive_equivalent(c, reduced)) << "k=" << k;
    EXPECT_LE(netlist::compute_stats(reduced).max_fanin, k) << "k=" << k;
  }
}

TEST_P(RandomCircuitSeedTest, MapperAllLibraries) {
  const auto c = gen::random_circuit(random_options(GetParam()));
  for (const Library& lib :
       {Library::generic(3), Library::generic(2), Library::nand_not(2),
        Library::and_or_not(3)}) {
    MapOptions options;
    options.library = lib;
    const MapResult result = map_to_library(c, options);
    EXPECT_TRUE(result.verified) << lib.name();
    EXPECT_LE(result.after.max_fanin, lib.max_fanin()) << lib.name();
    for (const auto& [type, count] : result.after.gate_histogram) {
      EXPECT_TRUE(lib.allows_type(type))
          << lib.name() << " produced " << to_string(type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSeedTest,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL,
                                           66ULL, 77ULL, 88ULL));

TEST(SynthProperties, PipelineStable) {
  // Running the full pipeline twice changes nothing the second time.
  const auto c = gen::random_circuit(random_options(1234));
  MapOptions options;
  const auto once = map_to_library(c, options);
  const auto twice = map_to_library(once.circuit, options);
  EXPECT_EQ(twice.after.num_gates, once.after.num_gates);
  EXPECT_EQ(twice.after.depth, once.after.depth);
}

}  // namespace
}  // namespace enb::synth
