// Thread-count independence of the parallel Monte-Carlo engine.
//
// Every estimator shards its trial budget into counter-based PRNG streams
// and combines shard accumulators with order-insensitive integer reductions,
// so at a fixed seed the serial path, the global pool and any dedicated pool
// size must produce *bit-identical* results — not merely statistically close
// ones. Thread control routes through the estimators' exec::Parallelism
// parameter (the unified knob of PR 3). These tests pin that contract.
#include <gtest/gtest.h>

#include <vector>

#include "exec/thread_pool.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/multipliers.hpp"
#include "sim/activity.hpp"
#include "sim/noise.hpp"
#include "sim/reliability.hpp"
#include "sim/sensitivity.hpp"

namespace enb::sim {
namespace {

// Parallelism settings to compare against the serial reference: the global
// pool, a single dedicated worker and two oversubscribed pools.
const exec::Parallelism kParallelisms[] = {exec::Parallelism::global_pool(),
                                           exec::Parallelism::dedicated(2),
                                           exec::Parallelism::dedicated(5)};

TEST(ParallelDeterminism, ActivityBitExactAcrossThreadCounts) {
  const auto c = gen::array_multiplier(4);
  ActivityOptions options;
  options.sample_pairs = 1234;  // non-multiple of shard size on purpose
  options.shard_pairs = 64;
  options.seed = 77;
  const ActivityResult serial =
      estimate_activity(c, options, exec::Parallelism::serial());
  for (const exec::Parallelism how : kParallelisms) {
    const ActivityResult parallel = estimate_activity(c, options, how);
    EXPECT_EQ(serial.one_probability, parallel.one_probability)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.toggle_rate, parallel.toggle_rate)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.avg_gate_toggle_rate, parallel.avg_gate_toggle_rate)
        << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, ActivityBiasedInputsBitExact) {
  const auto c = gen::ripple_carry_adder(4);
  ActivityOptions options;
  options.sample_pairs = 300;
  options.shard_pairs = 32;
  options.input_one_probability = 0.2;
  const ActivityResult serial =
      estimate_activity(c, options, exec::Parallelism::serial());
  const ActivityResult parallel =
      estimate_activity(c, options, exec::Parallelism::dedicated(4));
  EXPECT_EQ(serial.one_probability, parallel.one_probability);
  EXPECT_EQ(serial.toggle_rate, parallel.toggle_rate);
}

TEST(ParallelDeterminism, DeprecatedThreadsKnobStillHonoured) {
  // The legacy Options::threads route must agree with the Parallelism route
  // until the knob is removed.
  const auto c = gen::c17();
  ActivityOptions options;
  options.sample_pairs = 320;
  options.shard_pairs = 32;
  const ActivityResult via_parallelism =
      estimate_activity(c, options, exec::Parallelism::dedicated(3));
  options.threads = 3;
  const ActivityResult via_knob = estimate_activity(c, options);
  EXPECT_EQ(via_parallelism.toggle_rate, via_knob.toggle_rate);
  EXPECT_EQ(via_parallelism.one_probability, via_knob.one_probability);
}

TEST(ParallelDeterminism, NoisyActivityBitExactAcrossThreadCounts) {
  const auto c = gen::c17();
  ActivityOptions options;
  options.sample_pairs = 500;
  options.shard_pairs = 64;
  options.seed = 3;
  const ActivityResult serial =
      estimate_noisy_activity(c, 0.05, options, exec::Parallelism::serial());
  for (const exec::Parallelism how : kParallelisms) {
    const ActivityResult parallel =
        estimate_noisy_activity(c, 0.05, options, how);
    EXPECT_EQ(serial.one_probability, parallel.one_probability)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.toggle_rate, parallel.toggle_rate)
        << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, ReliabilityBitExactAcrossThreadCounts) {
  const auto base = gen::ripple_carry_adder(4);
  const auto tmr = ft::nmr_transform(base).circuit;
  ReliabilityOptions options;
  options.trials = 1 << 14;
  options.shard_passes = 16;
  options.seed = 19;
  const ReliabilityResult serial = estimate_reliability_vs(
      tmr, base, 0.01, options, exec::Parallelism::serial());
  for (const exec::Parallelism how : kParallelisms) {
    const ReliabilityResult parallel =
        estimate_reliability_vs(tmr, base, 0.01, options, how);
    EXPECT_EQ(serial.failures, parallel.failures)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.delta_hat, parallel.delta_hat)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.ci_low, parallel.ci_low) << "threads=" << how.threads;
    EXPECT_EQ(serial.ci_high, parallel.ci_high) << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, WorstCaseBitExactAcrossThreadCounts) {
  const auto c = gen::c17();
  WorstCaseOptions options;
  options.num_inputs = 40;
  options.trials_per_input = 1 << 9;
  const WorstCaseResult serial = estimate_worst_case_reliability(
      c, c, 0.05, options, exec::Parallelism::serial());
  for (const exec::Parallelism how : kParallelisms) {
    const WorstCaseResult parallel =
        estimate_worst_case_reliability(c, c, 0.05, options, how);
    EXPECT_EQ(serial.worst.failures, parallel.worst.failures)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.average_delta, parallel.average_delta)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.worst_input, parallel.worst_input)
        << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, SensitivitySampledBitExactAcrossThreadCounts) {
  const auto c = gen::array_multiplier(8);  // 16 inputs
  SensitivityOptions options;
  options.max_exact_inputs = 8;  // force the sampled path
  options.sample_words = 96;
  options.shard_words = 16;
  const SensitivityResult serial =
      compute_sensitivity(c, options, exec::Parallelism::serial());
  ASSERT_FALSE(serial.exact);
  for (const exec::Parallelism how : kParallelisms) {
    const SensitivityResult parallel = compute_sensitivity(c, options, how);
    EXPECT_EQ(serial.sensitivity, parallel.sensitivity)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.influence, parallel.influence)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.assignments, parallel.assignments)
        << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, SensitivityExactBitExactAcrossThreadCounts) {
  const auto c = gen::ripple_carry_adder(4);  // 9 inputs, 8 blocks
  SensitivityOptions options;
  options.shard_words = 2;
  const SensitivityResult serial =
      compute_sensitivity(c, options, exec::Parallelism::serial());
  ASSERT_TRUE(serial.exact);
  for (const exec::Parallelism how : kParallelisms) {
    const SensitivityResult parallel = compute_sensitivity(c, options, how);
    EXPECT_EQ(serial.sensitivity, parallel.sensitivity)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.influence, parallel.influence)
        << "threads=" << how.threads;
    EXPECT_EQ(serial.assignments, parallel.assignments)
        << "threads=" << how.threads;
  }
}

TEST(ParallelDeterminism, RepeatedPoolRunsAreStable) {
  // Two runs on the same pool configuration must agree with each other (and
  // with the serial path) — no hidden shared state across calls.
  const auto c = gen::c17();
  ActivityOptions options;
  options.sample_pairs = 640;
  options.shard_pairs = 64;
  const ActivityResult a =
      estimate_activity(c, options, exec::Parallelism::global_pool());
  const ActivityResult b =
      estimate_activity(c, options, exec::Parallelism::global_pool());
  EXPECT_EQ(a.toggle_rate, b.toggle_rate);
  EXPECT_EQ(a.one_probability, b.one_probability);
}

}  // namespace
}  // namespace enb::sim
