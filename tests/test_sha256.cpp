// FIPS 180-4 / NIST CAVP vectors for the digest primitive the fault judge
// pins campaign outputs with.
#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace enb::util {
namespace {

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// 55 and 56 tail bytes straddle the one-vs-two final block boundary (56 + 1
// + 8 > 64), the classic padding off-by-one.
TEST(Sha256, PaddingBoundary) {
  EXPECT_EQ(
      sha256_hex(std::string(55, 'a')),
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(
      sha256_hex(std::string(56, 'a')),
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  EXPECT_EQ(
      sha256_hex(std::string(1000000, 'a')),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace enb::util
