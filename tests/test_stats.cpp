#include "netlist/stats.hpp"

#include <gtest/gtest.h>

namespace enb::netlist {
namespace {

Circuit small_circuit() {
  Circuit c("small");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId d = c.add_input("c");
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  const NodeId g2 = c.add_gate(GateType::kOr, std::vector<NodeId>{g1, d, a});
  const NodeId g3 = c.add_gate(GateType::kNot, g2);
  c.add_output(g3, "y");
  return c;
}

TEST(Stats, Counts) {
  const CircuitStats stats = compute_stats(small_circuit());
  EXPECT_EQ(stats.name, "small");
  EXPECT_EQ(stats.num_inputs, 3u);
  EXPECT_EQ(stats.num_outputs, 1u);
  EXPECT_EQ(stats.num_nodes, 6u);
  EXPECT_EQ(stats.num_gates, 3u);
  EXPECT_EQ(stats.depth, 3);
}

TEST(Stats, FaninStatistics) {
  const CircuitStats stats = compute_stats(small_circuit());
  // Fanins: AND=2, OR=3, NOT=1 -> avg 2.0, max 3.
  EXPECT_DOUBLE_EQ(stats.avg_fanin, 2.0);
  EXPECT_EQ(stats.max_fanin, 3);
}

TEST(Stats, Histogram) {
  const CircuitStats stats = compute_stats(small_circuit());
  EXPECT_EQ(stats.gate_histogram.at(GateType::kAnd), 1u);
  EXPECT_EQ(stats.gate_histogram.at(GateType::kOr), 1u);
  EXPECT_EQ(stats.gate_histogram.at(GateType::kNot), 1u);
  EXPECT_EQ(stats.gate_histogram.count(GateType::kXor), 0u);
}

TEST(Stats, FanoutStatistics) {
  const CircuitStats stats = compute_stats(small_circuit());
  // a drives AND and OR; fanouts: a=2, b=1, c=1, g1=1, g2=1, g3=0.
  EXPECT_EQ(stats.max_fanout, 2);
  EXPECT_NEAR(stats.avg_fanout, 6.0 / 5.0, 1e-12);
}

TEST(Stats, EmptyAndInputOnly) {
  Circuit c;
  c.add_input("a");
  const CircuitStats stats = compute_stats(c);
  EXPECT_EQ(stats.num_gates, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_fanin, 0.0);
  EXPECT_EQ(stats.depth, 0);
}

TEST(Stats, ToStringMentionsKeyFigures) {
  const std::string text = compute_stats(small_circuit()).to_string();
  EXPECT_NE(text.find("small"), std::string::npos);
  EXPECT_NE(text.find("3 gates"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
}

}  // namespace
}  // namespace enb::netlist
