#include "core/validate_bounds.hpp"

#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "ft/nmr.hpp"
#include "gen/iscas.hpp"
#include "sim/reliability.hpp"

namespace enb::core {
namespace {

TEST(ValidateBounds, ConsistentPointPasses) {
  const CircuitProfile p = make_profile("toy", 4, 6, 0.4, 2, 4);
  EmpiricalPoint point;
  point.scheme = "tmr";
  point.total_gates = 26;  // 3*6 + voters
  point.delta_hat = 0.01;
  point.delta_ci_high = 0.012;
  const BoundCheck check = check_point(p, 0.01, point);
  EXPECT_TRUE(check.consistent);
  EXPECT_FALSE(check.vacuous);
  EXPECT_GT(check.required_size, 0.0);
  EXPECT_GT(check.slack, 0.0);
}

TEST(ValidateBounds, ImpossiblySmallDesignFlagged) {
  // Claiming delta = 1e-6 at eps = 0.2 with barely more than the base size
  // violates the bound.
  const CircuitProfile p = make_profile("toy", 10, 21, 0.5, 2, 10);
  EmpiricalPoint point;
  point.scheme = "fantasy";
  point.total_gates = 22;
  point.delta_hat = 1e-6;
  point.delta_ci_high = 1e-6;
  const BoundCheck check = check_point(p, 0.2, point);
  EXPECT_FALSE(check.consistent);
  EXPECT_LT(check.slack, 0.0);
}

TEST(ValidateBounds, VacuousRegimeNotJudged) {
  const CircuitProfile p = make_profile("toy", 4, 6, 0.4, 2, 4);
  EmpiricalPoint point;
  point.scheme = "broken";
  point.total_gates = 6;
  point.delta_hat = 0.6;  // not computing reliably at all
  point.delta_ci_high = 0.65;
  const BoundCheck check = check_point(p, 0.3, point);
  EXPECT_TRUE(check.vacuous);
  EXPECT_TRUE(check.consistent);
}

TEST(ValidateBounds, UsesConservativeCiEnd) {
  const CircuitProfile p = make_profile("toy", 10, 21, 0.5, 2, 10);
  EmpiricalPoint optimistic;
  optimistic.total_gates = 30;
  optimistic.delta_hat = 0.001;  // point estimate would demand more gates
  optimistic.delta_ci_high = 0.2;  // but the CI is wide
  const BoundCheck check = check_point(p, 0.1, optimistic);
  // Required size computed at delta = 0.2 (the easier target), so the check
  // is conservative.
  EmpiricalPoint tight = optimistic;
  tight.delta_ci_high = 0.001;
  const BoundCheck strict_check = check_point(p, 0.1, tight);
  EXPECT_LE(check.required_size, strict_check.required_size);
}

TEST(ValidateBounds, BatchProcessing) {
  const CircuitProfile p = make_profile("toy", 4, 6, 0.4, 2, 4);
  std::vector<EmpiricalPoint> points(3);
  points[0].total_gates = 26;
  points[0].delta_hat = points[0].delta_ci_high = 0.05;
  points[1].total_gates = 100;
  points[1].delta_hat = points[1].delta_ci_high = 0.01;
  points[2].total_gates = 6;
  points[2].delta_hat = points[2].delta_ci_high = 0.55;
  const auto checks = check_points(p, 0.02, points);
  ASSERT_EQ(checks.size(), 3u);
  EXPECT_TRUE(checks[0].consistent);
  EXPECT_TRUE(checks[1].consistent);
  EXPECT_TRUE(checks[2].vacuous);
}

TEST(ValidateBounds, RealTmrMeasurementIsConsistent) {
  // End-to-end: measure TMR'd c17 with Monte-Carlo fault injection and check
  // the achieved point against the theory.
  const auto base = gen::c17();
  const CircuitProfile p = extract_profile(base);
  const double eps = 0.02;
  const ft::NmrResult tmr = ft::nmr_transform(base);
  sim::ReliabilityOptions options;
  options.trials = 1 << 15;
  const auto rel =
      sim::estimate_reliability_vs(tmr.circuit, base, eps, options);
  EmpiricalPoint point;
  point.scheme = "tmr";
  point.total_gates = static_cast<double>(tmr.circuit.gate_count());
  point.delta_hat = rel.delta_hat;
  point.delta_ci_high = rel.ci_high;
  const BoundCheck check = check_point(p, eps, point);
  EXPECT_TRUE(check.consistent)
      << "required " << check.required_size << " gates, TMR has "
      << point.total_gates << " (delta_hat " << point.delta_hat << ")";
}

}  // namespace
}  // namespace enb::core
