#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/depth_bound.hpp"

namespace enb::core {
namespace {

TEST(Metrics, FeasibleComposition) {
  const MetricFactors m = combine_metrics(1.5, 2.0, 0.01);
  EXPECT_TRUE(m.feasible);
  EXPECT_DOUBLE_EQ(m.energy, 1.5);
  EXPECT_NEAR(m.delay, delay_factor_lower_bound(2.0, 0.01), 1e-12);
  EXPECT_NEAR(m.edp, m.energy * m.delay, 1e-12);
  EXPECT_NEAR(m.avg_power, m.energy / m.delay, 1e-12);
}

TEST(Metrics, InfeasibleRegime) {
  const MetricFactors m = combine_metrics(1.5, 2.0, 0.2);
  EXPECT_FALSE(m.feasible);
  EXPECT_TRUE(std::isinf(m.delay));
  EXPECT_TRUE(std::isinf(m.edp));
  EXPECT_DOUBLE_EQ(m.avg_power, 0.0);
}

TEST(Metrics, EdpAlwaysAtLeastDelay) {
  // Figure 5: the EDP curve sits above the delay curve (energy factor >= 1).
  for (double eps : {0.001, 0.01, 0.05, 0.1}) {
    const MetricFactors m = combine_metrics(1.2, 2.0, eps);
    EXPECT_GE(m.edp, m.delay);
  }
}

TEST(Metrics, PowerCrossoverWithEpsilon) {
  // Figure 6: at low eps the power factor exceeds 1 (energy grows faster
  // than delay); near the feasibility edge delay dominates and power < 1.
  // Use the Figure 3/5 parameters (s=10, S0=21, sw0=0.5, lambda=0.5, k=2).
  const auto power_at = [](double eps) {
    const EnergyBreakdown b = total_energy_factor(10, 21, 0.5, 2, eps, 0.01);
    return combine_metrics(b.total_factor, 2, eps).avg_power;
  };
  EXPECT_GT(power_at(0.01), 1.0);
  EXPECT_LT(power_at(0.14), 1.0);
}

TEST(Metrics, LargerFaninReducesLowEpsilonPowerOverhead) {
  // Figure 6: "a larger fanin reduces the overhead in average power" at low
  // error rates.
  const auto power_at = [](double k, double eps) {
    const EnergyBreakdown b = total_energy_factor(10, 21, 0.5, k, eps, 0.01);
    return combine_metrics(b.total_factor, k, eps).avg_power;
  };
  const double p2 = power_at(2, 0.01);
  const double p3 = power_at(3, 0.01);
  const double p4 = power_at(4, 0.01);
  EXPECT_GT(p2, p3);
  EXPECT_GT(p3, p4);
  EXPECT_GT(p4, 1.0);
}

TEST(Metrics, CleanChannelAllUnity) {
  const MetricFactors m = combine_metrics(1.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(m.energy, 1.0);
  EXPECT_DOUBLE_EQ(m.delay, 1.0);
  EXPECT_DOUBLE_EQ(m.edp, 1.0);
  EXPECT_DOUBLE_EQ(m.avg_power, 1.0);
}

}  // namespace
}  // namespace enb::core
