#include "core/profile.hpp"

#include <gtest/gtest.h>

#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/parity.hpp"

namespace enb::core {
namespace {

TEST(Profile, C17Extraction) {
  const CircuitProfile p = extract_profile(gen::c17());
  EXPECT_EQ(p.name, "c17");
  EXPECT_EQ(p.num_inputs, 5);
  EXPECT_EQ(p.num_outputs, 2);
  EXPECT_DOUBLE_EQ(p.size_s0, 6.0);
  EXPECT_EQ(p.depth_d0, 3);
  EXPECT_DOUBLE_EQ(p.avg_fanin_k, 2.0);
  EXPECT_TRUE(p.sensitivity_exact);
  // c17's sensitivity: flipping input 3 (signal "3") can change both
  // outputs; the exact value is 4 (verified by exhaustive enumeration).
  EXPECT_EQ(p.sensitivity_s, 4.0);
  EXPECT_GT(p.avg_activity_sw0, 0.2);
  EXPECT_LT(p.avg_activity_sw0, 0.6);
}

TEST(Profile, ParityActivityIsHalf) {
  // Every XOR output in a parity tree is balanced: sw = 0.5 exactly.
  const CircuitProfile p = extract_profile(gen::parity_tree(8, 2));
  EXPECT_NEAR(p.avg_activity_sw0, 0.5, 1e-12);
  EXPECT_EQ(p.sensitivity_s, 8.0);
  EXPECT_TRUE(p.sensitivity_exact);
}

TEST(Profile, RippleAdderSensitivity) {
  // Full sensitivity: at a=1..1, b=0..0, cin=0 every input flip changes the
  // output vector, so s = 2n+1.
  const CircuitProfile p = extract_profile(gen::ripple_carry_adder(4));
  EXPECT_EQ(p.sensitivity_s, 9.0);
  EXPECT_EQ(p.num_inputs, 9);
  EXPECT_DOUBLE_EQ(p.size_s0, 20.0);
}

TEST(Profile, LargeCircuitFallsBackToSampling) {
  ProfileOptions options;
  options.sensitivity_exact_max_inputs = 10;
  options.activity_pairs = 1 << 10;
  const CircuitProfile p =
      extract_profile(gen::ripple_carry_adder(16), options);
  EXPECT_FALSE(p.sensitivity_exact);
  // Sampled sensitivity still finds a decent lower bound for an adder.
  EXPECT_GE(p.sensitivity_s, 10.0);
  EXPECT_LE(p.sensitivity_s, 33.0);
}

TEST(Profile, MonteCarloAndExactActivityAgree) {
  ProfileOptions exact;
  ProfileOptions sampled;
  sampled.prefer_exact_activity = false;
  sampled.activity_pairs = 1 << 13;
  const auto circuit = gen::ripple_carry_adder(4);
  const CircuitProfile pe = extract_profile(circuit, exact);
  const CircuitProfile ps = extract_profile(circuit, sampled);
  EXPECT_NEAR(pe.avg_activity_sw0, ps.avg_activity_sw0, 0.01);
}

TEST(Profile, MakeProfileValidation) {
  const CircuitProfile p = make_profile("paper_parity", 10, 21, 0.5, 2, 10);
  EXPECT_EQ(p.sensitivity_s, 10.0);
  EXPECT_EQ(p.size_s0, 21.0);
  EXPECT_TRUE(p.sensitivity_exact);
  EXPECT_THROW((void)make_profile("bad", 0, 21, 0.5, 2, 10),
               std::invalid_argument);
  EXPECT_THROW((void)make_profile("bad", 10, 21, 1.5, 2, 10),
               std::invalid_argument);
}

TEST(Profile, RejectsGatelessCircuit) {
  netlist::Circuit c;
  c.add_output(c.add_input());
  EXPECT_THROW((void)extract_profile(c), std::invalid_argument);
}

}  // namespace
}  // namespace enb::core
