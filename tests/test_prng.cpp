#include "sim/prng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

namespace enb::sim {
namespace {

TEST(Prng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Prng, NextRealInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, NextRealMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_real();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, BitBalance) {
  Xoshiro256 rng(13);
  std::int64_t ones = 0;
  const int words = 10000;
  for (int i = 0; i < words; ++i) ones += std::popcount(rng.next());
  const double fraction = static_cast<double>(ones) / (64.0 * words);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(Prng, NextBelowRespectsBound) {
  Xoshiro256 rng(17);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Prng, NextBelowCoversRange) {
  Xoshiro256 rng(19);
  std::array<int, 5> histogram{};
  for (int i = 0; i < 5000; ++i) ++histogram[rng.next_below(5)];
  for (int count : histogram) EXPECT_GT(count, 800);
}

TEST(Prng, SplitmixDistinctOutputs) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
}

class BernoulliWordTest : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliWordTest, FractionMatchesP) {
  const double p = GetParam();
  Xoshiro256 rng(23);
  std::int64_t ones = 0;
  const int words = 20000;
  for (int i = 0; i < words; ++i) ones += std::popcount(bernoulli_word(rng, p));
  const double fraction = static_cast<double>(ones) / (64.0 * words);
  // ~1.28M samples: 5-sigma band.
  const double sigma = std::sqrt(p * (1 - p) / (64.0 * words));
  EXPECT_NEAR(fraction, p, 5.0 * sigma + 1e-9) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(SweepP, BernoulliWordTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.999));

TEST(BernoulliWord, DegenerateProbabilities) {
  Xoshiro256 rng(29);
  EXPECT_EQ(bernoulli_word(rng, 0.0), 0ULL);
  EXPECT_EQ(bernoulli_word(rng, 1.0), ~0ULL);
  EXPECT_EQ(bernoulli_word(rng, -0.5), 0ULL);
  EXPECT_EQ(bernoulli_word(rng, 1.5), ~0ULL);
}

TEST(BernoulliWord, LanesIndependent) {
  // Adjacent-lane correlation should be statistically negligible.
  Xoshiro256 rng(31);
  int both = 0;
  int first = 0;
  const int words = 50000;
  for (int i = 0; i < words; ++i) {
    const std::uint64_t w = bernoulli_word(rng, 0.5);
    if ((w & 1) != 0) {
      ++first;
      if ((w & 2) != 0) ++both;
    }
  }
  const double conditional =
      static_cast<double>(both) / std::max(1, first);
  EXPECT_NEAR(conditional, 0.5, 0.02);
}

}  // namespace
}  // namespace enb::sim
