#include "seq/seq_circuit.hpp"

#include <gtest/gtest.h>

namespace enb::seq {
namespace {

using netlist::GateType;
using netlist::NodeId;

SeqCircuit toggle_flipflop() {
  SeqCircuit seq("toggle");
  auto& c = seq.core();
  const NodeId q = c.add_input("q");
  const NodeId nq = c.add_gate(GateType::kNot, q);
  c.add_output(q, "out");
  seq.add_latch(q, nq, false, "q");
  return seq;
}

TEST(SeqCircuit, BasicConstruction) {
  const SeqCircuit seq = toggle_flipflop();
  EXPECT_EQ(seq.num_latches(), 1u);
  EXPECT_EQ(seq.num_free_inputs(), 0u);
  EXPECT_EQ(seq.latches()[0].name, "q");
  EXPECT_FALSE(seq.latches()[0].initial_value);
  EXPECT_NO_THROW(seq.validate());
}

TEST(SeqCircuit, FreeInputsExcludeLatched) {
  SeqCircuit seq;
  auto& c = seq.core();
  const NodeId q = c.add_input("q");
  const NodeId d = c.add_input("d");
  const NodeId buf = c.add_gate(GateType::kBuf, d);
  c.add_output(q);
  seq.add_latch(q, buf);
  const auto free = seq.free_inputs();
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0], d);
}

TEST(SeqCircuit, RejectsNonInputStateOutput) {
  SeqCircuit seq;
  auto& c = seq.core();
  const NodeId a = c.add_input();
  const NodeId g = c.add_gate(GateType::kNot, a);
  EXPECT_THROW(seq.add_latch(g, a), std::invalid_argument);
}

TEST(SeqCircuit, RejectsDoubleLatching) {
  SeqCircuit seq;
  auto& c = seq.core();
  const NodeId q = c.add_input();
  const NodeId g = c.add_gate(GateType::kNot, q);
  seq.add_latch(q, g);
  EXPECT_THROW(seq.add_latch(q, g), std::invalid_argument);
}

TEST(SeqCircuit, RejectsInvalidIds) {
  SeqCircuit seq;
  auto& c = seq.core();
  const NodeId q = c.add_input();
  EXPECT_THROW(seq.add_latch(q, static_cast<NodeId>(42)),
               std::invalid_argument);
}

TEST(SeqCircuit, ValidateRequiresObservables) {
  SeqCircuit seq;
  seq.core().add_input();
  EXPECT_THROW(seq.validate(), std::runtime_error);
}

}  // namespace
}  // namespace enb::seq
