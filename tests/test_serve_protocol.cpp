// Framing robustness: the server's first line of defence is that a hostile
// or broken byte stream surfaces as a typed ProtocolError at the framing
// layer — truncated frames, oversized declarations and malformed headers
// never reach verb dispatch, and never crash.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace enb::serve {
namespace {

Frame parse_one(const std::string& wire) {
  MemoryStream stream(wire);
  FrameReader reader(stream);
  const auto frame = reader.read_frame();
  EXPECT_TRUE(frame.has_value());
  return frame.value_or(Frame{});
}

TEST(Protocol, RoundTripsHeaderOnlyFrame) {
  MemoryStream out("");
  Frame frame;
  frame.verb = "ping";
  write_frame(out, frame);
  EXPECT_EQ(out.output(), "ping\n");

  const Frame parsed = parse_one(out.output());
  EXPECT_EQ(parsed.verb, "ping");
  EXPECT_TRUE(parsed.args.empty());
  EXPECT_TRUE(parsed.payload.empty());
}

TEST(Protocol, RoundTripsArgsAndBinaryPayload) {
  MemoryStream out("");
  Frame frame;
  frame.verb = "result";
  frame.add("index", "7").add("ok", "1");
  // Payload bytes are opaque: newlines, NULs and frame-lookalike text must
  // survive verbatim.
  frame.payload = std::string("line1\nresult index=0\n\0binary", 28);
  write_frame(out, frame);

  const Frame parsed = parse_one(out.output());
  EXPECT_EQ(parsed.verb, "result");
  EXPECT_EQ(parsed.arg("index"), "7");
  EXPECT_EQ(parsed.arg("ok"), "1");
  EXPECT_EQ(parsed.arg("missing"), std::nullopt);
  EXPECT_EQ(parsed.payload, frame.payload);
}

TEST(Protocol, ReadsBackToBackFramesAndCleanEof) {
  MemoryStream out("");
  Frame first;
  first.verb = "load";
  first.add("circuit", "c17");
  Frame second;
  second.verb = "batch";
  second.payload = "j kind=profile circuit=c17\n";
  write_frame(out, first);
  write_frame(out, second);

  MemoryStream in(out.output());
  FrameReader reader(in);
  const auto a = reader.read_frame();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->verb, "load");
  const auto b = reader.read_frame();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload, second.payload);
  EXPECT_FALSE(reader.read_frame().has_value());  // clean EOF, not an error
}

TEST(Protocol, TruncatedHeaderThrows) {
  MemoryStream in("stats");  // no newline before EOF
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, TruncatedPayloadThrows) {
  MemoryStream in("batch payload=100\nonly a few bytes");
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, MissingPayloadThrows) {
  MemoryStream in("batch payload=10\n");
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, OversizedPayloadDeclarationThrows) {
  // The declaration alone must be rejected — no allocation of 2^40 bytes.
  MemoryStream in("batch payload=1099511627776\n");
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, MalformedPayloadLengthThrows) {
  MemoryStream in("batch payload=abc\n");
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
  MemoryStream negative("batch payload=-1\n");
  FrameReader negative_reader(negative);
  EXPECT_THROW((void)negative_reader.read_frame(), ProtocolError);
}

TEST(Protocol, OversizedHeaderThrows) {
  std::string wire = "verb ";
  wire.append(kMaxHeaderBytes + 64, 'x');  // never a newline
  MemoryStream in(wire);
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, MalformedKeyValueThrows) {
  for (const char* wire : {"verb novalue\n", "verb =value\n", "verb key=\n"}) {
    MemoryStream in(wire);
    FrameReader reader(in);
    EXPECT_THROW((void)reader.read_frame(), ProtocolError) << wire;
  }
}

TEST(Protocol, EmptyAndBlankHeadersThrow) {
  for (const char* wire : {"\n", "   \n"}) {
    MemoryStream in(wire);
    FrameReader reader(in);
    EXPECT_THROW((void)reader.read_frame(), ProtocolError) << wire;
  }
}

TEST(Protocol, NonPrintableVerbThrows) {
  MemoryStream in("ve\trb\n");
  FrameReader reader(in);
  EXPECT_THROW((void)reader.read_frame(), ProtocolError);
}

TEST(Protocol, ExtraSpacesBetweenTokensAreAccepted) {
  const Frame parsed = parse_one("load   circuit=c17   map=3\n");
  EXPECT_EQ(parsed.verb, "load");
  EXPECT_EQ(parsed.arg("circuit"), "c17");
  EXPECT_EQ(parsed.arg("map"), "3");
}

TEST(Protocol, ValueMayContainEquals) {
  const Frame parsed = parse_one("analyze handle=c17 note=a=b\n");
  EXPECT_EQ(parsed.arg("note"), "a=b");
}

TEST(Protocol, WriteFrameValidatesTokens) {
  MemoryStream out("");
  Frame bad_verb;
  bad_verb.verb = "two words";
  EXPECT_THROW(write_frame(out, bad_verb), std::invalid_argument);

  Frame bad_key;
  bad_key.verb = "ok";
  bad_key.add("payload", "7");  // reserved
  EXPECT_THROW(write_frame(out, bad_key), std::invalid_argument);

  Frame bad_value;
  bad_value.verb = "ok";
  bad_value.add("name", "has space");
  EXPECT_THROW(write_frame(out, bad_value), std::invalid_argument);

  EXPECT_TRUE(out.output().empty());  // validation precedes any write
}

TEST(Protocol, RequiredAndUintArgHelpers) {
  const Frame parsed = parse_one("analyze handle=c17 index=12 bad=12x\n");
  EXPECT_EQ(parsed.required_arg("handle"), "c17");
  EXPECT_THROW((void)parsed.required_arg("absent"), std::invalid_argument);
  EXPECT_EQ(parsed.uint_arg("index"), 12u);
  EXPECT_EQ(parsed.uint_arg("absent"), std::nullopt);
  EXPECT_THROW((void)parsed.uint_arg("bad"), std::invalid_argument);
}

TEST(Protocol, PayloadSpanningManyReadChunksRoundTrips) {
  // Larger than FrameReader's 4096-byte read chunk, so reassembly across
  // chunk boundaries is exercised.
  std::string payload;
  for (int i = 0; i < 3000; ++i) payload += "0123456789";
  MemoryStream out("");
  Frame frame;
  frame.verb = "batch";
  frame.payload = payload;
  write_frame(out, frame);
  const Frame parsed = parse_one(out.output());
  EXPECT_EQ(parsed.payload.size(), payload.size());
  EXPECT_EQ(parsed.payload, payload);
}

}  // namespace
}  // namespace enb::serve
