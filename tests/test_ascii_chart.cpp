#include "report/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace enb::report {
namespace {

TEST(LineChart, RendersPointsAndLegend) {
  Series s("bound", {}, {});
  for (int i = 0; i <= 10; ++i) s.push(i, i * i);
  ChartOptions options;
  options.title = "growth";
  const std::string chart = line_chart({s}, options);
  EXPECT_NE(chart.find("growth"), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("* bound"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(LineChart, MultipleSeriesUseDistinctGlyphs) {
  Series a("a", {0, 1}, {0, 1});
  Series b("b", {0, 1}, {1, 0});
  const std::string chart = line_chart({a, b});
  EXPECT_NE(chart.find("* a"), std::string::npos);
  EXPECT_NE(chart.find("+ b"), std::string::npos);
}

TEST(LineChart, LogScaleHandlesDecades) {
  Series s("log", {0.001, 0.01, 0.1}, {1.0, 10.0, 100.0});
  ChartOptions options;
  options.log_x = true;
  options.log_y = true;
  const std::string chart = line_chart({s}, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(LineChart, SkipsNonFinitePoints) {
  Series s("inf", {0, 1, 2},
           {1.0, std::numeric_limits<double>::infinity(), 3.0});
  const std::string chart = line_chart({s});
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(LineChart, AllUnplottableDegradesGracefully) {
  Series s("neg", {1.0}, {-5.0});
  ChartOptions options;
  options.log_y = true;  // negative value unplottable on log axis
  EXPECT_EQ(line_chart({s}, options), "(no plottable points)\n");
}

TEST(LineChart, EmptyInputRejected) {
  EXPECT_THROW((void)line_chart({}), std::invalid_argument);
}

TEST(BarChart, RendersGroupsAndValues) {
  BarGroup g1{"rca8", {1.2, 1.5}};
  BarGroup g2{"mult4", {1.1, 1.9}};
  ChartOptions options;
  options.title = "energy bounds";
  const std::string chart =
      bar_chart({"e=0.001", "e=0.01"}, {g1, g2}, options);
  EXPECT_NE(chart.find("rca8"), std::string::npos);
  EXPECT_NE(chart.find("mult4"), std::string::npos);
  EXPECT_NE(chart.find("1.5"), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
}

TEST(BarChart, InfRendersAsText) {
  BarGroup g{"deep", {std::numeric_limits<double>::infinity()}};
  const std::string chart = bar_chart({"delay"}, {g});
  EXPECT_NE(chart.find("inf"), std::string::npos);
}

TEST(BarChart, WidthMismatchRejected) {
  BarGroup g{"x", {1.0}};
  EXPECT_THROW((void)bar_chart({"a", "b"}, {g}), std::invalid_argument);
  EXPECT_THROW((void)bar_chart({}, {}), std::invalid_argument);
}

TEST(BarChart, BarLengthProportional) {
  BarGroup g1{"small", {1.0}};
  BarGroup g2{"large", {10.0}};
  const std::string chart = bar_chart({"v"}, {g1, g2});
  // The long bar has ~10x the glyphs of the short one.
  const auto count_in_line = [&](const std::string& label) {
    const std::size_t pos = chart.find(label);
    const std::size_t end = chart.find('\n', pos);
    return std::count(chart.begin() + static_cast<long>(pos),
                      chart.begin() + static_cast<long>(end), '*');
  };
  EXPECT_GE(count_in_line("large"), 8 * std::max<long>(1, count_in_line("small")));
}

}  // namespace
}  // namespace enb::report
