#include "synth/sweep.hpp"

#include <gtest/gtest.h>

#include "sim/exhaustive.hpp"

namespace enb::synth {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(Sweep, ConstantFoldingAnd) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId k0 = c.add_const(false);
  c.add_output(c.add_gate(GateType::kAnd, a, k0), "y");
  const Circuit s = sweep(c);
  // AND(a, 0) == 0: no gates remain, output driven by a constant.
  EXPECT_EQ(s.gate_count(), 0u);
  EXPECT_EQ(s.type(s.outputs()[0]), GateType::kConst0);
}

TEST(Sweep, NeutralOperandDrops) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId k1 = c.add_const(true);
  c.add_output(c.add_gate(GateType::kAnd, std::vector<NodeId>{a, b, k1}));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 1u);
  EXPECT_EQ(s.fanins(s.outputs()[0]).size(), 2u);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Sweep, DoubleInverterCollapses) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId n1 = c.add_gate(GateType::kNot, a);
  const NodeId n2 = c.add_gate(GateType::kNot, n1);
  c.add_output(n2);
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 0u);
  EXPECT_EQ(s.outputs()[0], s.inputs()[0]);
}

TEST(Sweep, BufferRemoval) {
  Circuit c;
  const NodeId a = c.add_input();
  NodeId x = a;
  for (int i = 0; i < 5; ++i) x = c.add_gate(GateType::kBuf, x);
  c.add_output(c.add_gate(GateType::kNot, x));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 1u);
}

TEST(Sweep, KeepBuffersOption) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_output(c.add_gate(GateType::kBuf, a));
  SweepOptions options;
  options.keep_buffers = true;
  const Circuit s = sweep(c, options);
  EXPECT_EQ(s.gate_count(), 1u);
}

TEST(Sweep, DuplicateOperandsAndOr) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, std::vector<NodeId>{a, a, b}));
  c.add_output(c.add_gate(GateType::kOr, std::vector<NodeId>{a, a}));
  const Circuit s = sweep(c);
  // AND(a,a,b) -> AND(a,b); OR(a,a) -> a.
  EXPECT_EQ(s.gate_count(), 1u);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Sweep, XorPairCancellation) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kXor, std::vector<NodeId>{a, a, b}));
  const Circuit s = sweep(c);
  // a ^ a ^ b == b.
  EXPECT_EQ(s.gate_count(), 0u);
  EXPECT_EQ(s.outputs()[0], s.inputs()[1]);
}

TEST(Sweep, XorWithConstOne) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId k1 = c.add_const(true);
  c.add_output(c.add_gate(GateType::kXor, a, k1));
  const Circuit s = sweep(c);
  // a ^ 1 == !a.
  EXPECT_EQ(s.gate_count(), 1u);
  EXPECT_EQ(s.type(s.outputs()[0]), GateType::kNot);
}

TEST(Sweep, XnorParityPolarity) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kXnor, a, b));
  const Circuit s = sweep(c);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Sweep, NandSingleOperandBecomesNot) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId k1 = c.add_const(true);
  c.add_output(c.add_gate(GateType::kNand, a, k1));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.type(s.outputs()[0]), GateType::kNot);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Sweep, MajWithConstant) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId k1 = c.add_const(true);
  const NodeId k0 = c.add_const(false);
  c.add_output(c.add_gate(GateType::kMaj, a, b, k1));  // OR(a, b)
  c.add_output(c.add_gate(GateType::kMaj, a, b, k0));  // AND(a, b)
  const Circuit s = sweep(c);
  EXPECT_EQ(s.type(s.outputs()[0]), GateType::kOr);
  EXPECT_EQ(s.type(s.outputs()[1]), GateType::kAnd);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
}

TEST(Sweep, MajDuplicateOperand) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_output(c.add_gate(GateType::kMaj, a, a, b));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 0u);
  EXPECT_EQ(s.outputs()[0], s.inputs()[0]);
}

TEST(Sweep, NorToConstCascade) {
  // NOR(a, 1) == 0, then AND(b, 0) == 0: folding cascades through levels.
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId k1 = c.add_const(true);
  const NodeId nor_gate = c.add_gate(GateType::kNor, a, k1);
  c.add_output(c.add_gate(GateType::kAnd, b, nor_gate));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 0u);
  EXPECT_EQ(s.type(s.outputs()[0]), GateType::kConst0);
}

TEST(Sweep, PreservesFunctionOnRandomCircuits) {
  // Functional preservation over a mixed-structure circuit.
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(c.add_input());
  const NodeId k1 = c.add_const(true);
  const NodeId g1 = c.add_gate(GateType::kXor, std::vector<NodeId>{ins[0], ins[1], k1});
  const NodeId g2 = c.add_gate(GateType::kNand, std::vector<NodeId>{ins[2], ins[2], ins[3]});
  const NodeId g3 = c.add_gate(GateType::kMaj, g1, g2, ins[4]);
  const NodeId g4 = c.add_gate(GateType::kNor, g3, ins[5]);
  c.add_output(g4);
  c.add_output(g1);
  const Circuit s = sweep(c);
  EXPECT_TRUE(sim::exhaustive_equivalent(c, s));
  EXPECT_LE(s.gate_count(), c.gate_count());
}

TEST(Sweep, DeadLogicRemoved) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  c.add_gate(GateType::kXor, a, b);  // dead
  c.add_output(c.add_gate(GateType::kAnd, a, b));
  const Circuit s = sweep(c);
  EXPECT_EQ(s.gate_count(), 1u);
}

}  // namespace
}  // namespace enb::synth
