#include "report/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace enb::report {
namespace {

TEST(Table, TextAlignment) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::string("1")});
  t.add_row({std::string("b"), std::string("22222")});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Rows have equal visible width (aligned columns).
  std::size_t first_len = 0;
  std::size_t start = 0;
  std::vector<std::size_t> lengths;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) break;
    lengths.push_back(end - start);
    start = end + 1;
  }
  ASSERT_GE(lengths.size(), 4u);
  first_len = lengths[0];
  EXPECT_EQ(lengths[2], first_len);
  EXPECT_EQ(lengths[3], first_len);
}

TEST(Table, NumericRowFormatting) {
  Table t({"bench", "e0.001", "e0.01"});
  t.add_row("rca8", {1.0123456, std::numeric_limits<double>::infinity()});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("rca8"), std::string::npos);
  EXPECT_NE(text.find("1.012"), std::string::npos);
  EXPECT_NE(text.find("inf"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), std::string("y")});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(Table, WidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only_one")}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::nan("")), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(0.000125, 3), "0.000125");
}

TEST(Table, Counts) {
  Table t({"h1"});
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({std::string("v")});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace enb::report
