#include "ft/nmr.hpp"

#include <gtest/gtest.h>

#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "sim/exhaustive.hpp"
#include "sim/reliability.hpp"

namespace enb::ft {
namespace {

TEST(Nmr, TmrPreservesFunction) {
  const auto base = gen::c17();
  const NmrResult tmr = nmr_transform(base);
  EXPECT_TRUE(sim::exhaustive_equivalent(base, tmr.circuit));
}

TEST(Nmr, FiveWayPreservesFunction) {
  const auto base = gen::ripple_carry_adder(3);
  NmrOptions options;
  options.copies = 5;
  const NmrResult nmr = nmr_transform(base, options);
  EXPECT_TRUE(sim::exhaustive_equivalent(base, nmr.circuit));
}

TEST(Nmr, SizeAccounting) {
  const auto base = gen::c17();
  const NmrResult tmr = nmr_transform(base);
  EXPECT_EQ(tmr.replica_gates, 3 * base.gate_count());
  // Two outputs, one 4-gate maj3 voter each.
  EXPECT_EQ(tmr.voter_gates, 8u);
  EXPECT_EQ(tmr.circuit.gate_count(), tmr.replica_gates + tmr.voter_gates);
}

TEST(Nmr, InterfacePreserved) {
  const auto base = gen::ripple_carry_adder(2);
  const NmrResult tmr = nmr_transform(base);
  EXPECT_EQ(tmr.circuit.num_inputs(), base.num_inputs());
  EXPECT_EQ(tmr.circuit.num_outputs(), base.num_outputs());
  EXPECT_EQ(tmr.circuit.output_name(0), base.output_name(0));
}

TEST(Nmr, ImprovesReliabilityAtModerateEpsilon) {
  const auto base = gen::c17();
  const NmrResult tmr = nmr_transform(base);
  const double eps = 0.01;
  sim::ReliabilityOptions options;
  options.trials = 1 << 16;
  const auto base_rel = sim::estimate_reliability(base, eps, options);
  const auto tmr_rel =
      sim::estimate_reliability_vs(tmr.circuit, base, eps, options);
  // TMR with noisy voters still wins comfortably at eps = 1%.
  EXPECT_LT(tmr_rel.delta_hat, base_rel.delta_hat);
}

TEST(Nmr, MajGateVoterOption) {
  NmrOptions options;
  options.voter = VoterStyle::kMajGate;
  const auto base = gen::c17();
  const NmrResult tmr = nmr_transform(base, options);
  EXPECT_EQ(tmr.voter_gates, 2u);  // one MAJ gate per output
  EXPECT_TRUE(sim::exhaustive_equivalent(base, tmr.circuit));
}

TEST(Nmr, RejectsBadCopyCounts) {
  const auto base = gen::c17();
  NmrOptions options;
  options.copies = 2;
  EXPECT_THROW((void)nmr_transform(base, options), std::invalid_argument);
  options.copies = 4;
  EXPECT_THROW((void)nmr_transform(base, options), std::invalid_argument);
}

TEST(CascadedTmr, LevelsCompose) {
  const auto base = gen::c17();
  const auto l0 = cascaded_tmr(base, 0);
  EXPECT_EQ(l0.gate_count(), base.gate_count());
  const auto l1 = cascaded_tmr(base, 1);
  EXPECT_TRUE(sim::exhaustive_equivalent(base, l1));
  const auto l2 = cascaded_tmr(base, 2);
  EXPECT_TRUE(sim::exhaustive_equivalent(base, l2));
  EXPECT_GT(l2.gate_count(), 3 * l1.gate_count());
}

TEST(CascadedTmr, RejectsSillyLevels) {
  EXPECT_THROW((void)cascaded_tmr(gen::c17(), 5), std::invalid_argument);
  EXPECT_THROW((void)cascaded_tmr(gen::c17(), -1), std::invalid_argument);
}

}  // namespace
}  // namespace enb::ft
