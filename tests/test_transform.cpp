#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "netlist/topo.hpp"

namespace enb::netlist {
namespace {

Circuit xor_circuit() {
  Circuit c("xor2");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  c.add_output(c.add_gate(GateType::kXor, a, b), "y");
  return c;
}

TEST(Transform, AppendCircuitWiresInputs) {
  Circuit host("host");
  const NodeId x = host.add_input("x");
  const NodeId y = host.add_input("y");
  const NodeId nx = host.add_gate(GateType::kNot, x);
  const std::vector<NodeId> subs{nx, y};
  const std::vector<NodeId> outs = append_circuit(host, xor_circuit(), subs);
  ASSERT_EQ(outs.size(), 1u);
  host.add_output(outs[0]);
  EXPECT_EQ(host.gate_count(), 2u);  // not + xor
  EXPECT_EQ(host.type(outs[0]), GateType::kXor);
  EXPECT_EQ(host.fanins(outs[0])[0], nx);
  EXPECT_EQ(host.fanins(outs[0])[1], y);
}

TEST(Transform, AppendCircuitChecksInputCount) {
  Circuit host;
  const NodeId x = host.add_input();
  const std::vector<NodeId> subs{x};
  EXPECT_THROW((void)append_circuit(host, xor_circuit(), subs),
               std::invalid_argument);
}

TEST(Transform, AppendCopiesConstants) {
  Circuit src;
  const NodeId a = src.add_input();
  const NodeId k = src.add_const(true);
  src.add_output(src.add_gate(GateType::kAnd, a, k));

  Circuit host;
  const NodeId x = host.add_input();
  const std::vector<NodeId> subs{x};
  const auto outs = append_circuit(host, src, subs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(host.type(host.fanins(outs[0])[1]), GateType::kConst1);
}

TEST(Transform, CloneIsDeepAndIdentical) {
  const Circuit original = xor_circuit();
  const Circuit copy = clone(original);
  EXPECT_EQ(copy.name(), original.name());
  EXPECT_EQ(copy.node_count(), original.node_count());
  EXPECT_EQ(copy.num_outputs(), original.num_outputs());
  EXPECT_EQ(copy.node_name(copy.inputs()[0]), "a");
  EXPECT_EQ(copy.output_name(0), "y");
}

TEST(Transform, ExtractConeKeepsAllInputs) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g1 = c.add_gate(GateType::kNot, a);
  const NodeId g2 = c.add_gate(GateType::kNot, b);
  c.add_output(g1, "o1");
  c.add_output(g2, "o2");

  const std::vector<std::size_t> positions{1};
  const Circuit cone = extract_cone(c, positions);
  EXPECT_EQ(cone.num_inputs(), 2u);  // inputs stay for stable indexing
  EXPECT_EQ(cone.num_outputs(), 1u);
  EXPECT_EQ(cone.gate_count(), 1u);
  EXPECT_EQ(cone.output_name(0), "o2");
}

TEST(Transform, ExtractConeRejectsBadPosition) {
  const Circuit c = xor_circuit();
  const std::vector<std::size_t> positions{3};
  EXPECT_THROW((void)extract_cone(c, positions), std::out_of_range);
}

TEST(Transform, RemoveDeadNodes) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId live = c.add_gate(GateType::kBuf, a);
  c.add_gate(GateType::kNot, a);  // dead
  c.add_gate(GateType::kXor, a, live);  // dead
  c.add_output(live, "y");

  const Circuit cleaned = remove_dead_nodes(c);
  EXPECT_EQ(cleaned.gate_count(), 1u);
  EXPECT_EQ(cleaned.num_inputs(), 1u);
  EXPECT_EQ(cleaned.num_outputs(), 1u);
  EXPECT_EQ(cleaned.output_name(0), "y");
}

TEST(Transform, RemoveDeadNodesPreservesOutputOrder) {
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kNot, a);
  const NodeId g2 = c.add_gate(GateType::kBuf, a);
  c.add_output(g2, "second_defined_first");
  c.add_output(g1, "first_defined_second");
  const Circuit cleaned = remove_dead_nodes(c);
  EXPECT_EQ(cleaned.output_name(0), "second_defined_first");
  EXPECT_EQ(cleaned.output_name(1), "first_defined_second");
}

TEST(Transform, NestedAppendBuildsLargerDag) {
  // Build xor4 = xor2(xor2(a,b), xor2(c,d)) from three instances.
  Circuit host("xor4");
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(host.add_input());
  const Circuit x = xor_circuit();
  const std::vector<NodeId> s1{ins[0], ins[1]};
  const std::vector<NodeId> s2{ins[2], ins[3]};
  const NodeId t1 = append_circuit(host, x, s1)[0];
  const NodeId t2 = append_circuit(host, x, s2)[0];
  const std::vector<NodeId> s3{t1, t2};
  host.add_output(append_circuit(host, x, s3)[0]);
  EXPECT_EQ(host.gate_count(), 3u);
  EXPECT_EQ(depth(host), 2);
}

}  // namespace
}  // namespace enb::netlist
