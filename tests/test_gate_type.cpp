#include "netlist/gate_type.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace enb::netlist {
namespace {

TEST(GateType, ArityRanges) {
  EXPECT_EQ(arity_range(GateType::kInput).max, 0);
  EXPECT_EQ(arity_range(GateType::kConst0).max, 0);
  EXPECT_EQ(arity_range(GateType::kBuf).min, 1);
  EXPECT_EQ(arity_range(GateType::kBuf).max, 1);
  EXPECT_EQ(arity_range(GateType::kNot).max, 1);
  EXPECT_EQ(arity_range(GateType::kMaj).min, 3);
  EXPECT_EQ(arity_range(GateType::kMaj).max, 3);
  EXPECT_EQ(arity_range(GateType::kAnd).min, 1);
  EXPECT_GT(arity_range(GateType::kAnd).max, 1000);
}

TEST(GateType, Classification) {
  EXPECT_TRUE(is_input(GateType::kInput));
  EXPECT_FALSE(is_input(GateType::kAnd));
  EXPECT_TRUE(is_constant(GateType::kConst0));
  EXPECT_TRUE(is_constant(GateType::kConst1));
  EXPECT_FALSE(is_constant(GateType::kNot));
  EXPECT_FALSE(counts_as_gate(GateType::kInput));
  EXPECT_FALSE(counts_as_gate(GateType::kConst1));
  EXPECT_TRUE(counts_as_gate(GateType::kBuf));
  EXPECT_TRUE(counts_as_gate(GateType::kNand));
}

TEST(GateType, Commutativity) {
  EXPECT_TRUE(is_commutative(GateType::kAnd));
  EXPECT_TRUE(is_commutative(GateType::kXnor));
  EXPECT_TRUE(is_commutative(GateType::kMaj));
  EXPECT_FALSE(is_commutative(GateType::kBuf));
  EXPECT_FALSE(is_commutative(GateType::kInput));
}

TEST(GateType, NameRoundTrip) {
  const std::vector<GateType> all = {
      GateType::kConst0, GateType::kConst1, GateType::kBuf,  GateType::kNot,
      GateType::kAnd,    GateType::kNand,   GateType::kOr,   GateType::kNor,
      GateType::kXor,    GateType::kXnor,   GateType::kMaj,  GateType::kInput};
  for (GateType type : all) {
    const auto parsed = gate_type_from_string(to_string(type));
    ASSERT_TRUE(parsed.has_value()) << to_string(type);
    EXPECT_EQ(*parsed, type);
  }
}

TEST(GateType, NameAliases) {
  EXPECT_EQ(gate_type_from_string("BUFF"), GateType::kBuf);
  EXPECT_EQ(gate_type_from_string("buff"), GateType::kBuf);
  EXPECT_EQ(gate_type_from_string("INV"), GateType::kNot);
  EXPECT_EQ(gate_type_from_string("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_string("Maj3"), GateType::kMaj);
  EXPECT_EQ(gate_type_from_string("VDD"), GateType::kConst1);
  EXPECT_EQ(gate_type_from_string("GND"), GateType::kConst0);
  EXPECT_FALSE(gate_type_from_string("DFF").has_value());
  EXPECT_FALSE(gate_type_from_string("").has_value());
}

TEST(GateType, EvalWordBasics) {
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  using W = std::vector<std::uint64_t>;
  EXPECT_EQ(eval_word(GateType::kAnd, W{a, b}), std::uint64_t{0b1000});
  EXPECT_EQ(eval_word(GateType::kOr, W{a, b}), std::uint64_t{0b1110});
  EXPECT_EQ(eval_word(GateType::kXor, W{a, b}), std::uint64_t{0b0110});
  EXPECT_EQ(eval_word(GateType::kNand, W{a, b}) & 0xF, std::uint64_t{0b0111});
  EXPECT_EQ(eval_word(GateType::kNor, W{a, b}) & 0xF, std::uint64_t{0b0001});
  EXPECT_EQ(eval_word(GateType::kXnor, W{a, b}) & 0xF, std::uint64_t{0b1001});
  EXPECT_EQ(eval_word(GateType::kBuf, W{a}), a);
  EXPECT_EQ(eval_word(GateType::kNot, W{a}) & 0xF, std::uint64_t{0b0011});
  EXPECT_EQ(eval_word(GateType::kConst0, {}), std::uint64_t{0});
  EXPECT_EQ(eval_word(GateType::kConst1, {}), ~std::uint64_t{0});
}

TEST(GateType, EvalWordMajority) {
  const std::uint64_t a = 0b11110000;
  const std::uint64_t b = 0b11001100;
  const std::uint64_t c = 0b10101010;
  EXPECT_EQ(eval_word(GateType::kMaj, std::vector<std::uint64_t>{a, b, c}),
            std::uint64_t{0b11101000});
}

TEST(GateType, EvalWordWideGates) {
  const std::vector<std::uint64_t> inputs = {0xF, 0xF0F, 0xFFF};
  EXPECT_EQ(eval_word(GateType::kAnd, inputs), std::uint64_t{0xF});
  EXPECT_EQ(eval_word(GateType::kOr, inputs), std::uint64_t{0xFFF});
  // Single-operand associative gates are identity (or its negation).
  EXPECT_EQ(eval_word(GateType::kAnd, std::vector<std::uint64_t>{0xAB}),
            std::uint64_t{0xAB});
  EXPECT_EQ(eval_word(GateType::kXnor, std::vector<std::uint64_t>{0}), ~std::uint64_t{0});
}

TEST(GateType, EvalWordArityErrors) {
  EXPECT_THROW((void)eval_word(GateType::kNot, std::vector<std::uint64_t>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)eval_word(GateType::kMaj, std::vector<std::uint64_t>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)eval_word(GateType::kAnd, {}), std::invalid_argument);
  EXPECT_THROW((void)eval_word(GateType::kInput, {}), std::invalid_argument);
}

TEST(GateType, EvalBitMatchesEvalWord) {
  using B = std::vector<bool>;
  EXPECT_TRUE(eval_bit(GateType::kMaj, B{true, false, true}));
  EXPECT_FALSE(eval_bit(GateType::kMaj, B{true, false, false}));
  EXPECT_TRUE(eval_bit(GateType::kXor, B{true, false, false}));
  EXPECT_FALSE(eval_bit(GateType::kXor, B{true, true, false, false}));
  EXPECT_TRUE(eval_bit(GateType::kNand, B{true, false}));
  EXPECT_FALSE(eval_bit(GateType::kAnd, B{true, false}));
}

}  // namespace
}  // namespace enb::netlist
