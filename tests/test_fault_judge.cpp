// Judge-style golden-digest harness (the as6325400 fault-simulation
// discipline): run one fixed random campaign per suite circuit, SHA-256 the
// `.ans` bytes, and compare against the checked-in table below. Any engine
// change that perturbs a single detection bit, pattern draw, net name, or
// format byte fails loudly with a digest diff.
//
// The campaign is pinned completely by (patterns, seed, shard_patterns,
// collapse) plus the determinism contract: shard streams make the bytes
// independent of thread count, and pass normalization makes them
// independent of lane width — both re-checked here explicitly.
//
// To re-pin after an *intentional* output change: run this binary, copy the
// "actual" digests from the failure messages, and update kJudgeTable in the
// same change that explains why the bytes moved.
// PR 8 extends the same discipline to the static reasoning engine: the
// `cec` JSON bytes for each scale-suite circuit against its TMR'd self are
// pinned below (kCecJudgeTable), and the pruned-universe `.ans` bytes are
// required to match kJudgeTable *unchanged* — the untestable-class prover
// may only skip faults that never detect, so pruning must not move a byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "exec/batch.hpp"
#include "fault/campaign.hpp"
#include "fault/untestable.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"
#include "util/sha256.hpp"

namespace enb::fault {
namespace {

// One fixed campaign shape for every circuit: small enough that the whole
// table (standard + scale suites) grades in seconds, sharded so the
// cross-shard merge is always exercised.
CampaignOptions judge_options() {
  CampaignOptions options;
  options.patterns = 24;
  options.seed = 0xD1CE;
  options.shard_patterns = 8;
  return options;
}

std::string judge_ans(const std::string& name, const CampaignOptions& options,
                      exec::Parallelism how = {}) {
  const netlist::Circuit circuit = gen::find_benchmark(name).build();
  const FaultUniverse universe =
      FaultUniverse::build(circuit, options.collapse);
  const DetectionTable table =
      build_detection_table(circuit, circuit, universe, options, how);
  std::ostringstream out;
  write_ans(out, circuit, universe, table);
  return out.str();
}

struct JudgeEntry {
  const char* name;
  const char* sha256;
};

constexpr JudgeEntry kJudgeTable[] = {
    {"c17",
     "01b6262fe72b6a6092c26f2ae8342560857e424cfc62adb15ffcfda5fcc10bea"},
    {"parity8",
     "f14f0d9b3767e0be3b76b86e0ed4e91334c879a7bdde41ebd56638bac6851660"},
    {"parity16",
     "85194b3f84d9de56af47417f21b82082f566037ee6b8cd2bcf9d704d39de71b2"},
    {"rca8",
     "c9a231e8fd44b8772c45339e94be3bf9c6608685496f6fad692085ba5759faad"},
    {"rca16",
     "99426f7c9834274ffd8715bc698915c994ad57fb2553c129450074dc8abca724"},
    {"rca32",
     "a2399ad21c9ba983d25ec6ffc8c43748d212411073fabb2ebb26f1481868533f"},
    {"cla16",
     "95402ecbb41b3e954fce7d636cf4e5ee1a7f861fb062be921a71d797bb40b3d7"},
    {"csel16",
     "e3f28bff097a346df8fde1d979a089bc66c5e4e28e4396a3160adb7d96c4be54"},
    {"mult4",
     "d1123fe29fa94645eeadb24f54738294b5b80afa3ed0cc62902d8e048f81a9f9"},
    {"mult8",
     "c81eb91b48da83a0c8611228294b1e1fa3f8678f902fef553494c2bd9c59cbcb"},
    {"cmp16",
     "fdf4831e8fa65fb04db4e5908f29d52106592cfce9bf69f5d8f2a8c37243ec84"},
    {"alu8",
     "b5f0717221efe10bd07b3a6c2d3584264c7073d10075bda88575589772f8d490"},
    {"c432",
     "6277b4491ff26288f5ed908da9f3569aa6e82e371015d9015959ef5834abec89"},
    {"rca256",
     "14ff1655465ac3cf25ef62d3ff4955b6c951432b66e816dc162ce14a1f139cb6"},
    {"csel64",
     "f54226e0f4a25a401338fabb6636baec365d6960cb3112d700a3d26448979f89"},
    {"mult16",
     "19b390344060887525a82114ebd995f7c3847ccfba070089a94c1a328d5a93dc"},
    {"alu64",
     "263c2afcde7854fe8dcd7af7ac43263b8e3065728a6e9c5c636b3948649ba7d7"},
};

// The table covers both suites completely — a circuit added to either
// without a pinned digest fails here, not silently.
TEST(FaultJudge, TableCoversStandardAndScaleSuites) {
  std::vector<std::string> expected;
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    expected.push_back(spec.name);
  }
  for (const gen::BenchmarkSpec& spec : gen::scale_suite()) {
    expected.push_back(spec.name);
  }
  std::vector<std::string> pinned;
  for (const JudgeEntry& entry : kJudgeTable) pinned.push_back(entry.name);
  EXPECT_EQ(pinned, expected);
}

TEST(FaultJudge, AnsDigestsMatchGoldenTable) {
  for (const JudgeEntry& entry : kJudgeTable) {
    EXPECT_EQ(util::sha256_hex(judge_ans(entry.name, judge_options())),
              entry.sha256)
        << entry.name;
  }
}

// The same bytes must come out of every lane width and any thread count —
// the digest pins the execution-policy independence of the whole row-level
// path, not just the aggregate counters.
TEST(FaultJudge, DigestIndependentOfLaneWidthAndThreads) {
  const std::string name = "rca32";
  const std::string baseline =
      util::sha256_hex(judge_ans(name, judge_options()));
  for (const LaneWidth width : all_lane_widths()) {
    CampaignOptions options = judge_options();
    options.lanes = width;
    EXPECT_EQ(util::sha256_hex(judge_ans(name, options)), baseline)
        << "lanes=" << to_string(width);
    EXPECT_EQ(util::sha256_hex(
                  judge_ans(name, options, exec::Parallelism::dedicated(8))),
              baseline)
        << "lanes=" << to_string(width) << " threads=8";
  }
}

// ---- static-reasoning digests (PR 8) --------------------------------------

// The `cec` row exactly as the batch JSON writer emits it: one scale-suite
// circuit against its own TMR transform, default CecOptions. Pins the whole
// verdict surface — stage attribution (structural vs BDD), output counts,
// and the JSON byte format the server streams.
std::string judge_cec_json(const std::string& name,
                           exec::Parallelism how = {}) {
  const netlist::Circuit base = gen::find_benchmark(name).build();
  analysis::AnalysisRequest request;
  request.name = name + "_vs_tmr";
  request.circuit = analysis::compile(gen::find_benchmark(name).build());
  request.golden = analysis::compile(ft::nmr_transform(base).circuit);
  request.options = analysis::CecRequest{};
  const analysis::AnalysisResult result = analysis::evaluate(request, how);
  std::ostringstream out;
  exec::write_result_json(out, result);
  return out.str();
}

constexpr JudgeEntry kCecJudgeTable[] = {
    {"c432",
     "109922a6c4937a5d3468f0059849d2d9f9230fa4a78bbc630ccede782350b33f"},
    {"rca256",
     "3cebec2f1520889131b327ef19cbd815f6cf854f4f4b17cc190d5cf296a85257"},
    {"csel64",
     "16bac951b00467a523370584c58e0038fcbecc19d41b640ee745dfd6864fb19f"},
    {"mult16",
     "43ff4bb4ba6588b4f0d74fef604d1af08d07069dc7fac4a5c563817d2783fe3e"},
    {"alu64",
     "756077ad04e7d98d4824e61c50f4d5b2945245d5d7dc64e6caa4c759baa4fbcd"},
};

TEST(FaultJudge, CecTableCoversScaleSuite) {
  std::vector<std::string> expected;
  for (const gen::BenchmarkSpec& spec : gen::scale_suite()) {
    expected.push_back(spec.name);
  }
  std::vector<std::string> pinned;
  for (const JudgeEntry& entry : kCecJudgeTable) pinned.push_back(entry.name);
  EXPECT_EQ(pinned, expected);
}

TEST(FaultJudge, CecJsonDigestsMatchGoldenTable) {
  for (const JudgeEntry& entry : kCecJudgeTable) {
    EXPECT_EQ(util::sha256_hex(judge_cec_json(entry.name)), entry.sha256)
        << entry.name << " actual bytes: " << judge_cec_json(entry.name);
  }
}

TEST(FaultJudge, CecJsonDigestIndependentOfThreads) {
  const std::string baseline = judge_cec_json("csel64");
  EXPECT_EQ(judge_cec_json("csel64", exec::Parallelism::serial()), baseline);
  EXPECT_EQ(judge_cec_json("csel64", exec::Parallelism::dedicated(8)),
            baseline);
}

// Pruned-universe `.ans` bytes against the *unpruned* golden table: the
// prover may only remove faults that never detect, so every row — including
// the rows of the pruned classes — must come out byte-identical.
std::string judge_pruned_ans(const std::string& name,
                             const CampaignOptions& options,
                             exec::Parallelism how = {}) {
  const netlist::Circuit circuit = gen::find_benchmark(name).build();
  const FaultUniverse universe = FaultUniverse::build(
      circuit, options.collapse, /*prune_untestable=*/true);
  const DetectionTable table =
      build_detection_table(circuit, circuit, universe, options, how);
  std::ostringstream out;
  write_ans(out, circuit, universe, table);
  return out.str();
}

TEST(FaultJudge, PrunedAnsBytesMatchUnprunedGoldenTable) {
  for (const gen::BenchmarkSpec& spec : gen::scale_suite()) {
    for (const JudgeEntry& entry : kJudgeTable) {
      if (spec.name != entry.name) continue;
      CampaignOptions options = judge_options();
      options.prune_untestable = true;
      EXPECT_EQ(util::sha256_hex(judge_pruned_ans(entry.name, options)),
                entry.sha256)
          << entry.name;
    }
  }
}

TEST(FaultJudge, PrunedAnsDigestIndependentOfLaneWidthAndThreads) {
  const std::string name = "csel64";
  CampaignOptions pruning = judge_options();
  pruning.prune_untestable = true;
  // Non-vacuity: the carry-select tree really has untestable classes.
  {
    const netlist::Circuit circuit = gen::find_benchmark(name).build();
    const FaultUniverse universe =
        FaultUniverse::build(circuit, pruning.collapse, true);
    EXPECT_GT(universe.num_untestable(), 0u);
  }
  const std::string baseline =
      util::sha256_hex(judge_pruned_ans(name, pruning));
  EXPECT_EQ(util::sha256_hex(judge_ans(name, judge_options())), baseline);
  for (const LaneWidth width : all_lane_widths()) {
    CampaignOptions options = pruning;
    options.lanes = width;
    EXPECT_EQ(util::sha256_hex(judge_pruned_ans(name, options)), baseline)
        << "lanes=" << to_string(width);
    EXPECT_EQ(util::sha256_hex(judge_pruned_ans(
                  name, options, exec::Parallelism::dedicated(8))),
              baseline)
        << "lanes=" << to_string(width) << " threads=8";
  }
}

}  // namespace
}  // namespace enb::fault
