#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

namespace enb::bdd {
namespace {

TEST(Bdd, TerminalsAndVars) {
  Bdd mgr(3);
  EXPECT_TRUE(mgr.is_terminal(Bdd::kFalse));
  EXPECT_TRUE(mgr.is_terminal(Bdd::kTrue));
  const Ref x0 = mgr.var_ref(0);
  EXPECT_FALSE(mgr.is_terminal(x0));
  EXPECT_EQ(mgr.var_of(x0), 0u);
  EXPECT_EQ(mgr.lo(x0), Bdd::kFalse);
  EXPECT_EQ(mgr.hi(x0), Bdd::kTrue);
  const Ref nx0 = mgr.nvar_ref(0);
  EXPECT_EQ(mgr.lo(nx0), Bdd::kTrue);
  EXPECT_EQ(mgr.hi(nx0), Bdd::kFalse);
}

TEST(Bdd, HashConsingIsCanonical) {
  Bdd mgr(3);
  EXPECT_EQ(mgr.var_ref(1), mgr.var_ref(1));
  const Ref a = mgr.apply_and(mgr.var_ref(0), mgr.var_ref(1));
  const Ref b = mgr.apply_and(mgr.var_ref(1), mgr.var_ref(0));
  EXPECT_EQ(a, b);  // commutativity falls out of canonicity
}

TEST(Bdd, BooleanIdentities) {
  Bdd mgr(4);
  const Ref x = mgr.var_ref(0);
  const Ref y = mgr.var_ref(1);
  EXPECT_EQ(mgr.apply_and(x, Bdd::kTrue), x);
  EXPECT_EQ(mgr.apply_and(x, Bdd::kFalse), Bdd::kFalse);
  EXPECT_EQ(mgr.apply_or(x, Bdd::kFalse), x);
  EXPECT_EQ(mgr.apply_or(x, Bdd::kTrue), Bdd::kTrue);
  EXPECT_EQ(mgr.apply_xor(x, x), Bdd::kFalse);
  EXPECT_EQ(mgr.apply_xor(x, Bdd::kFalse), x);
  EXPECT_EQ(mgr.apply_not(mgr.apply_not(x)), x);
  // De Morgan.
  EXPECT_EQ(mgr.apply_not(mgr.apply_and(x, y)),
            mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y)));
  // Absorption.
  EXPECT_EQ(mgr.apply_or(x, mgr.apply_and(x, y)), x);
}

TEST(Bdd, IteAgreesWithDefinition) {
  Bdd mgr(3);
  const Ref f = mgr.var_ref(0);
  const Ref g = mgr.var_ref(1);
  const Ref h = mgr.var_ref(2);
  const Ref via_ite = mgr.ite(f, g, h);
  const Ref direct = mgr.apply_or(mgr.apply_and(f, g),
                                  mgr.apply_and(mgr.apply_not(f), h));
  EXPECT_EQ(via_ite, direct);
}

TEST(Bdd, CofactorRestricts) {
  Bdd mgr(2);
  const Ref x = mgr.var_ref(0);
  const Ref y = mgr.var_ref(1);
  const Ref f = mgr.apply_and(x, y);
  EXPECT_EQ(mgr.cofactor(f, 0, true), y);
  EXPECT_EQ(mgr.cofactor(f, 0, false), Bdd::kFalse);
  EXPECT_EQ(mgr.cofactor(f, 1, true), x);
  // Cofactor on an absent variable is identity.
  EXPECT_EQ(mgr.cofactor(x, 1, true), x);
}

TEST(Bdd, FlipVarSubstitutesComplement) {
  Bdd mgr(2);
  const Ref x = mgr.var_ref(0);
  const Ref y = mgr.var_ref(1);
  EXPECT_EQ(mgr.flip_var(x, 0), mgr.nvar_ref(0));
  const Ref f = mgr.apply_and(x, y);
  const Ref flipped = mgr.flip_var(f, 1);  // x & !y
  EXPECT_EQ(flipped, mgr.apply_and(x, mgr.nvar_ref(1)));
  // Double flip is identity.
  EXPECT_EQ(mgr.flip_var(flipped, 1), f);
}

TEST(Bdd, QuantificationXorParity) {
  Bdd mgr(3);
  Ref parity = Bdd::kFalse;
  for (unsigned v = 0; v < 3; ++v) parity = mgr.apply_xor(parity, mgr.var_ref(v));
  // exists x . parity == true; forall x . parity == false.
  EXPECT_EQ(mgr.exists(parity, 0), Bdd::kTrue);
  EXPECT_EQ(mgr.forall(parity, 0), Bdd::kFalse);
}

TEST(Bdd, SatFractionBasics) {
  Bdd mgr(3);
  const Ref x = mgr.var_ref(0);
  const Ref y = mgr.var_ref(1);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(Bdd::kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(Bdd::kTrue), 1.0);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(x), 0.5);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(mgr.apply_and(x, y)), 0.25);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(mgr.apply_or(x, y)), 0.75);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.apply_and(x, y)), 2.0);  // 2 of 8
}

TEST(Bdd, ProbabilityWeightsInputs) {
  Bdd mgr(2);
  const Ref f = mgr.apply_and(mgr.var_ref(0), mgr.var_ref(1));
  const std::vector<double> p{0.9, 0.1};
  EXPECT_NEAR(mgr.probability(f, p), 0.09, 1e-12);
  const Ref g = mgr.apply_or(mgr.var_ref(0), mgr.var_ref(1));
  EXPECT_NEAR(mgr.probability(g, p), 1 - 0.1 * 0.9, 1e-12);
  const std::vector<double> wrong_size{0.5};
  EXPECT_THROW((void)mgr.probability(f, wrong_size), std::invalid_argument);
}

TEST(Bdd, MajOperator) {
  Bdd mgr(3);
  const Ref m = mgr.apply_maj(mgr.var_ref(0), mgr.var_ref(1), mgr.var_ref(2));
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(m), 0.5);  // 4 of 8 assignments
  // maj(x,x,y) == x.
  EXPECT_EQ(mgr.apply_maj(mgr.var_ref(0), mgr.var_ref(0), mgr.var_ref(2)),
            mgr.var_ref(0));
}

TEST(Bdd, NodeCountOfParityIsLinear) {
  const unsigned n = 16;
  Bdd mgr(n);
  Ref parity = Bdd::kFalse;
  for (unsigned v = 0; v < n; ++v) parity = mgr.apply_xor(parity, mgr.var_ref(v));
  // Parity OBDD: 2 nodes per level except the first, plus 2 terminals.
  EXPECT_EQ(mgr.node_count(parity), 2 * n - 1 + 2);
}

TEST(Bdd, NodeLimitThrows) {
  Bdd mgr(20, /*node_limit=*/16);
  Ref acc = Bdd::kFalse;
  EXPECT_THROW(
      {
        for (unsigned v = 0; v < 20; ++v) {
          acc = mgr.apply_xor(acc, mgr.var_ref(v));
        }
      },
      BddLimitExceeded);
}

TEST(Bdd, VarOutOfRangeThrows) {
  Bdd mgr(2);
  EXPECT_THROW((void)mgr.var_ref(2), std::invalid_argument);
  EXPECT_THROW((void)mgr.cofactor(Bdd::kTrue, 5, true), std::invalid_argument);
  EXPECT_THROW((void)mgr.var_of(Bdd::kTrue), std::invalid_argument);
}

TEST(Bdd, SharedSubgraphsReduceCount) {
  Bdd mgr(4);
  const Ref x0 = mgr.var_ref(0);
  const Ref x1 = mgr.var_ref(1);
  const Ref common = mgr.apply_and(mgr.var_ref(2), mgr.var_ref(3));
  const Ref f = mgr.ite(x0, common, mgr.ite(x1, common, Bdd::kFalse));
  // The 'common' subgraph appears once in the DAG.
  EXPECT_LE(mgr.node_count(f), 7u);
}

}  // namespace
}  // namespace enb::bdd
