// Bit-parallel vs scalar-reference fault-simulation equivalence, and the
// pass-reduction contract the fault packing exists for.
#include "fault/fault_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/campaign.hpp"
#include "gen/random_circuit.hpp"
#include "gen/suite.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::fault {
namespace {

using netlist::Circuit;

std::vector<std::vector<bool>> random_patterns(std::size_t count,
                                               std::size_t inputs,
                                               std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<std::vector<bool>> rows(count);
  for (auto& row : rows) {
    row.resize(inputs);
    for (std::size_t i = 0; i < inputs; ++i) row[i] = (rng.next() >> 63) != 0;
  }
  return rows;
}

// Every (pattern, class) detection bit of the 64-fault-parallel simulator
// must equal the scalar one-fault-at-a-time reference. The two paths share
// no evaluation machinery, so this is a real cross-implementation check.
void expect_bit_identity(const Circuit& circuit,
                         const std::vector<std::vector<bool>>& patterns,
                         bool collapse) {
  const FaultUniverse universe = FaultUniverse::build(circuit, collapse);
  FaultParallelSim parallel(circuit, universe);
  ScalarFaultSim scalar(circuit, universe);
  for (const std::vector<bool>& pattern : patterns) {
    const std::vector<bool> expected = sim::eval_single(circuit, pattern);
    std::vector<sim::Word> detected(parallel.num_blocks());
    for (std::size_t b = 0; b < parallel.num_blocks(); ++b) {
      detected[b] = parallel.detect_block(b, pattern, expected);
    }
    for (std::size_t c = 0; c < universe.num_classes(); ++c) {
      const bool parallel_bit =
          ((detected[c / sim::kWordBits] >> (c % sim::kWordBits)) & 1) != 0;
      EXPECT_EQ(scalar.detect(c, pattern, expected), parallel_bit)
          << circuit.name() << " class " << c;
    }
  }
}

TEST(FaultSim, BitIdenticalToScalarOnIscasSuite) {
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const Circuit circuit = spec.build();
    expect_bit_identity(circuit,
                        random_patterns(4, circuit.num_inputs(), 0xC0FFEE),
                        /*collapse=*/true);
  }
}

TEST(FaultSim, BitIdenticalToScalarOnC17Exhaustively) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  std::vector<std::vector<bool>> patterns;
  for (std::uint64_t a = 0; a < (1u << 5); ++a) {
    std::vector<bool> row(5);
    for (std::size_t i = 0; i < 5; ++i) row[i] = ((a >> i) & 1) != 0;
    patterns.push_back(std::move(row));
  }
  expect_bit_identity(c17, patterns, /*collapse=*/true);
  expect_bit_identity(c17, patterns, /*collapse=*/false);
}

TEST(FaultSim, BitIdenticalToScalarOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::RandomCircuitOptions options;
    options.num_inputs = 10;
    options.num_gates = 80;
    options.num_outputs = 6;
    options.seed = seed;
    const Circuit circuit = gen::random_circuit(options);
    expect_bit_identity(circuit, random_patterns(6, 10, seed * 977),
                        /*collapse=*/true);
  }
}

TEST(FaultSim, DetectsInjectedFaultOnObservablePath) {
  // y = a AND b: output sa1 is detected by (0,0), masked on (1,1).
  Circuit c("and2");
  const netlist::NodeId a = c.add_input("a");
  const netlist::NodeId b = c.add_input("b");
  const netlist::NodeId g = c.add_gate(netlist::GateType::kAnd, a, b);
  c.add_output(g);
  const FaultUniverse universe = FaultUniverse::build(c, /*collapse=*/false);
  FaultParallelSim sim(c, universe);
  const std::size_t g_sa1 = universe.class_of(2 * g + 1);

  const std::vector<bool> zeros{false, false};
  const sim::Word low = sim.detect_block(g_sa1 / sim::kWordBits, zeros,
                                         sim::eval_single(c, zeros));
  EXPECT_NE((low >> (g_sa1 % sim::kWordBits)) & 1, 0u);

  const std::vector<bool> ones{true, true};
  const sim::Word high = sim.detect_block(g_sa1 / sim::kWordBits, ones,
                                          sim::eval_single(c, ones));
  EXPECT_EQ((high >> (g_sa1 % sim::kWordBits)) & 1, 0u);
}

TEST(FaultSim, PassCountingAndBlockMask) {
  const Circuit circuit = gen::find_benchmark("rca8").build();
  const FaultUniverse universe = FaultUniverse::build(circuit);
  FaultParallelSim sim(circuit, universe);
  const std::size_t blocks =
      (universe.num_classes() + sim::kWordBits - 1) / sim::kWordBits;
  EXPECT_EQ(sim.num_blocks(), blocks);
  const auto patterns = random_patterns(1, circuit.num_inputs(), 7);
  const std::vector<bool> expected = sim::eval_single(circuit, patterns[0]);
  for (std::size_t b = 0; b < sim.num_blocks(); ++b) {
    const sim::Word detected = sim.detect_block(b, patterns[0], expected);
    EXPECT_EQ(detected & ~sim.block_mask(b), 0u);
  }
  EXPECT_EQ(sim.passes(), blocks);
}

// The acceptance pin: packing 64 faults per word must cut the sweeps a
// campaign performs by at least 32x against the one-fault-at-a-time flow
// (both flows pay one golden pass per pattern).
TEST(FaultSim, FaultPackingCutsPassesAtLeast32x) {
  const Circuit circuit = gen::find_benchmark("rca16").build();
  CampaignOptions options;
  options.patterns = 16;
  const FaultUniverse universe = FaultUniverse::build(circuit);
  ASSERT_GE(universe.num_classes(), 64u);

  const DetectionTable table = build_detection_table(
      circuit, circuit, universe, options, exec::Parallelism::serial());
  // Scalar flow: one golden pass plus one faulty pass per class, per
  // pattern.
  const std::uint64_t scalar_passes =
      options.patterns * (1 + universe.num_classes());
  EXPECT_GE(scalar_passes, 32 * table.passes)
      << "bit-parallel passes " << table.passes << ", scalar passes "
      << scalar_passes;
}

TEST(FaultSim, RejectsMalformedBundles) {
  const Circuit c17 = gen::find_benchmark("c17").build();
  const FaultUniverse universe = FaultUniverse::build(c17);
  EXPECT_THROW(FaultParallelSim(c17, universe, 2), std::invalid_argument);
  EXPECT_THROW(FaultParallelSim(c17, universe, 3), std::invalid_argument);
  EXPECT_THROW(ScalarFaultSim(c17, universe, -1), std::invalid_argument);
  FaultParallelSim sim(c17, universe, 1);
  EXPECT_THROW((void)sim.detect_block(0, {true}, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)sim.detect_block(0, {true, true, true, true, true}, {false}),
      std::invalid_argument);
}

}  // namespace
}  // namespace enb::fault
