#include "core/activity_model.hpp"

#include <gtest/gtest.h>

namespace enb::core {
namespace {

TEST(ActivityModel, Theorem1Formula) {
  // sw(z) = (1-2e)^2 sw(y) + 2e(1-e), spot values.
  EXPECT_NEAR(noisy_activity(0.2, 0.1), 0.64 * 0.2 + 0.18, 1e-15);
  EXPECT_NEAR(noisy_activity(0.0, 0.25), 2 * 0.25 * 0.75, 1e-15);
  EXPECT_NEAR(noisy_activity(1.0, 0.25), 0.25 + 0.375, 1e-15);
}

TEST(ActivityModel, CleanChannelIsIdentity) {
  for (double sw : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(noisy_activity(sw, 0.0), sw);
  }
}

TEST(ActivityModel, TotalNoiseIsCoinFlip) {
  for (double sw : {0.0, 0.2, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(noisy_activity(sw, 0.5), 0.5);
  }
}

TEST(ActivityModel, FixedPointAtHalf) {
  for (double eps : {0.0, 0.05, 0.2, 0.49}) {
    EXPECT_NEAR(noisy_activity(kActivityFixedPoint, eps), kActivityFixedPoint,
                1e-15)
        << "eps=" << eps;
  }
}

TEST(ActivityModel, ContractionTowardHalf) {
  // |sw(z) - 1/2| = (1-2e)^2 |sw(y) - 1/2|.
  for (double eps : {0.01, 0.1, 0.3}) {
    for (double sw : {0.05, 0.3, 0.7, 0.95}) {
      const double z = noisy_activity(sw, eps);
      EXPECT_NEAR(std::abs(z - 0.5),
                  activity_contraction(eps) * std::abs(sw - 0.5), 1e-12);
    }
  }
}

TEST(ActivityModel, QuietGatesGetBusierBusyGatesQuieter) {
  EXPECT_GT(noisy_activity(0.1, 0.1), 0.1);
  EXPECT_LT(noisy_activity(0.9, 0.1), 0.9);
}

TEST(ActivityModel, InverseRecoversClean) {
  for (double eps : {0.01, 0.2, 0.45}) {
    for (double sw : {0.0, 0.25, 0.5, 0.8, 1.0}) {
      EXPECT_NEAR(clean_activity(noisy_activity(sw, eps), eps), sw, 1e-10);
    }
  }
  EXPECT_THROW((void)clean_activity(0.5, 0.5), std::invalid_argument);
}

TEST(ActivityModel, RatioMatchesCorollary2Factor) {
  // ratio = (1-2e)^2 + 2e(1-e)/sw0.
  const double eps = 0.01;
  const double sw0 = 0.2;
  EXPECT_NEAR(activity_ratio(sw0, eps),
              0.98 * 0.98 + 2 * 0.01 * 0.99 / 0.2, 1e-15);
  // Consistency with the direct formula.
  EXPECT_NEAR(activity_ratio(sw0, eps), noisy_activity(sw0, eps) / sw0, 1e-15);
}

TEST(ActivityModel, RatioAtFixedPointIsOne) {
  for (double eps : {0.001, 0.01, 0.1, 0.3}) {
    EXPECT_NEAR(activity_ratio(0.5, eps), 1.0, 1e-15);
  }
}

TEST(ActivityModel, IdleRatioComplementIdentity) {
  // 1 - sw(z) == idle_ratio * (1 - sw0).
  for (double eps : {0.02, 0.2}) {
    for (double sw0 : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(idle_ratio(sw0, eps) * (1 - sw0),
                  1 - noisy_activity(sw0, eps), 1e-12);
    }
  }
}

TEST(ActivityModel, DomainChecks) {
  EXPECT_THROW((void)noisy_activity(-0.1, 0.1), std::invalid_argument);
  EXPECT_THROW((void)noisy_activity(1.1, 0.1), std::invalid_argument);
  EXPECT_THROW((void)noisy_activity(0.5, 0.6), std::invalid_argument);
  EXPECT_THROW((void)activity_ratio(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)idle_ratio(1.0, 0.1), std::invalid_argument);
}

class Theorem1SweepTest : public ::testing::TestWithParam<double> {};

TEST_P(Theorem1SweepTest, MonotoneInSw) {
  const double eps = GetParam();
  double prev = noisy_activity(0.0, eps);
  for (int i = 1; i <= 20; ++i) {
    const double sw = i / 20.0;
    const double cur = noisy_activity(sw, eps);
    if (eps < 0.5) {
      EXPECT_GT(cur, prev);
    } else {
      EXPECT_DOUBLE_EQ(cur, prev);
    }
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsGrid, Theorem1SweepTest,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.1, 0.2,
                                           0.3, 0.4, 0.5));

}  // namespace
}  // namespace enb::core
