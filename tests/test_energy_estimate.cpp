#include "core/energy_estimate.hpp"

#include <gtest/gtest.h>

#include "core/energy_bound.hpp"
#include "core/profile.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "gen/multipliers.hpp"
#include "sim/noise.hpp"

namespace enb::core {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

TEST(EnergyEstimate, HandComputedTwoGateCircuit) {
  // AND(a,b) -> NOT: fanouts AND=1, NOT=0; exact activities p(AND)=0.25
  // (sw 0.375), p(NOT)=0.75 (sw 0.375).
  Circuit c;
  const NodeId a = c.add_input();
  const NodeId b = c.add_input();
  const NodeId g1 = c.add_gate(GateType::kAnd, a, b);
  c.add_output(c.add_gate(GateType::kNot, g1));
  const auto activity = sim::exact_activity(c);

  EnergyEstimateParams params;
  params.vdd = 2.0;
  params.cap_base = 1.0;
  params.cap_per_fanout = 0.5;
  params.leakage_k = 0.25;
  const EnergyEstimate e = estimate_energy(c, activity, params);
  // E_sw = 0.5*4*(1.5*0.375 + 1.0*0.375) = 2*0.9375 = 1.875.
  EXPECT_NEAR(e.switching, 1.875, 1e-12);
  // E_L = 0.25*2*((1-0.375) + (1-0.375)) = 0.5*1.25 = 0.625.
  EXPECT_NEAR(e.leakage, 0.625, 1e-12);
  EXPECT_NEAR(e.total(), 2.5, 1e-12);
  EXPECT_NEAR(e.leakage_ratio(), 0.625 / 1.875, 1e-12);
}

TEST(EnergyEstimate, InputsAndConstantsContributeNothing) {
  Circuit c;
  const NodeId a = c.add_input();
  c.add_const(true);
  c.add_output(a);
  const auto activity = sim::exact_activity(c);
  const EnergyEstimate e = estimate_energy(c, activity, {});
  EXPECT_DOUBLE_EQ(e.switching, 0.0);
}

TEST(EnergyEstimate, CalibrationHitsTarget) {
  const Circuit c = gen::ripple_carry_adder(4);
  const auto activity = sim::exact_activity(c);
  EnergyEstimateParams params;
  params.leakage_k = calibrate_leakage_k(c, activity, params, 1.0);
  const EnergyEstimate e = estimate_energy(c, activity, params);
  EXPECT_NEAR(e.leakage_ratio(), 1.0, 1e-9);  // "equal contributions"
  // Half of total is leakage.
  EXPECT_NEAR(e.leakage / e.total(), 0.5, 1e-9);
}

TEST(EnergyEstimate, MismatchedActivityRejected) {
  const Circuit c = gen::c17();
  sim::ActivityResult bogus;
  bogus.toggle_rate.assign(2, 0.5);
  EXPECT_THROW((void)estimate_energy(c, bogus, {}), std::invalid_argument);
}

TEST(EnergyEstimate, BadParamsRejected) {
  const Circuit c = gen::c17();
  const auto activity = sim::exact_activity(c);
  EnergyEstimateParams params;
  params.vdd = 0.0;
  EXPECT_THROW((void)estimate_energy(c, activity, params),
               std::invalid_argument);
}

TEST(NoisyActivity, MatchesCleanAtZeroEpsilon) {
  const Circuit c = gen::ripple_carry_adder(3);
  sim::ActivityOptions options;
  options.sample_pairs = 1 << 11;
  const auto clean = sim::estimate_activity(c, options);
  const auto noisy = sim::estimate_noisy_activity(c, 0.0, options);
  EXPECT_NEAR(noisy.avg_gate_toggle_rate, clean.avg_gate_toggle_rate, 0.01);
}

TEST(NoisyActivity, PullsTowardHalf) {
  const Circuit c = gen::ripple_carry_adder(3);
  sim::ActivityOptions options;
  options.sample_pairs = 1 << 11;
  const auto clean = sim::estimate_activity(c, options);
  const auto noisy = sim::estimate_noisy_activity(c, 0.2, options);
  EXPECT_LT(std::abs(noisy.avg_gate_toggle_rate - 0.5),
            std::abs(clean.avg_gate_toggle_rate - 0.5) + 0.01);
}

TEST(EmpiricalEnergy, IdenticalCircuitsAtZeroNoiseGiveUnity) {
  const Circuit c = gen::c17();
  const auto result = empirical_energy_factor(c, c, 0.0);
  EXPECT_NEAR(result.factor, 1.0, 0.02);
  EXPECT_NEAR(result.wl_base, 1.0, 1e-6);  // calibrated
}

TEST(EmpiricalEnergy, TmrCostsAboveCorollary2Floor) {
  // The measured energy factor of a real TMR implementation must dominate
  // the Corollary 2 lower bound for the achieved reliability level (we use
  // delta = 0.01 <= what TMR achieves here, making the bound even easier,
  // i.e. this is a conservative check).
  const Circuit base = gen::c17();
  const auto tmr = ft::nmr_transform(base).circuit;
  const double eps = 0.01;
  const auto measured = empirical_energy_factor(base, tmr, eps);
  EXPECT_GT(measured.factor, 3.0);  // 3x replicas + voters, similar activity

  const CircuitProfile profile = extract_profile(base);
  const EnergyBreakdown bound = total_energy_factor(
      profile.sensitivity_s, profile.size_s0, profile.avg_activity_sw0,
      profile.avg_fanin_k, eps, 0.01);
  EXPECT_GT(measured.factor, bound.total_factor);
}

TEST(EmpiricalEnergy, NoiseShiftsLeakageRatioPerTheorem3) {
  // sw0 < 0.5 baseline: under noise the redundant design's measured W_L
  // drops relative to the clean baseline — Theorem 3's direction, now
  // observed on estimated energies rather than closed forms.
  const Circuit base = gen::array_multiplier(3);  // low-activity circuit
  const auto tmr = ft::nmr_transform(base).circuit;
  const auto measured = empirical_energy_factor(base, tmr, 0.1);
  EXPECT_LT(measured.wl_redundant, measured.wl_base);
}

}  // namespace
}  // namespace enb::core
